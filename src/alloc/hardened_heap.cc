#include "alloc/hardened_heap.h"

#include "obs/names.h"

namespace flexos {
namespace {

constexpr uint64_t AlignUp(uint64_t value, uint64_t align) {
  return (value + align - 1) & ~(align - 1);
}

}  // namespace

HardenedHeap::HardenedHeap(Allocator& backing, uint64_t quarantine_bytes)
    : backing_(backing),
      quarantine_capacity_(quarantine_bytes),
      quarantine_gauge_(&backing.space().machine().metrics().GetGauge(
          obs::kMetricQuarantineBytes)) {}

HardenedHeap::~HardenedHeap() {
  // Drain the quarantine so the backing allocator is left clean.
  while (!quarantine_.empty()) {
    EvictOneFromQuarantine();
  }
}

Result<Gaddr> HardenedHeap::Allocate(uint64_t size, uint64_t align) {
  if (size == 0) {
    size = 1;
  }
  AddressSpace& space = backing_.space();
  space.machine().clock().Charge(space.machine().costs().sh_alloc_overhead);

  // Layout: [left redzone][payload (granule-padded)][right redzone].
  const uint64_t padded = AlignUp(size, kShadowGranule);
  const uint64_t total = kRedzone + padded + kRedzone;
  // The left redzone is a granule multiple, so requesting alignment
  // max(align, granule) for the block keeps the payload aligned too.
  const uint64_t block_align = align > kShadowGranule ? align : kShadowGranule;
  FLEXOS_ASSIGN_OR_RETURN(Gaddr block, backing_.Allocate(total, block_align));

  const Gaddr user = block + kRedzone;
  space.Poison(block, kRedzone, kShadowHeapRedzone);
  space.Unpoison(user, padded);
  if (padded != size) {
    // Mark the padding tail of the last granule unaddressable.
    space.Poison(user + size - size % kShadowGranule, kShadowGranule,
                 kShadowHeapRedzone);
    space.Unpoison(user + size - size % kShadowGranule, size % kShadowGranule);
  }
  space.Poison(user + padded, kRedzone, kShadowHeapRedzone);

  live_[user] = size;
  stats_.OnAlloc(size);
  return user;
}

Status HardenedHeap::Free(Gaddr addr) {
  auto it = live_.find(addr);
  if (it == live_.end()) {
    return Status(ErrorCode::kInvalidArgument,
                  "hardened free: bad pointer or double free");
  }
  AddressSpace& space = backing_.space();
  space.machine().clock().Charge(space.machine().costs().sh_alloc_overhead);

  const uint64_t user_size = it->second;
  live_.erase(it);
  stats_.OnFree(user_size);

  // Poison the payload and park the block in the quarantine so prompt reuse
  // cannot mask a use-after-free.
  space.Poison(addr, AlignUp(user_size, kShadowGranule), kShadowFreed);
  quarantine_.push_back(Quarantined{.user_addr = addr, .user_size = user_size});
  quarantine_bytes_used_ += user_size;
  while (quarantine_bytes_used_ > quarantine_capacity_ &&
         !quarantine_.empty()) {
    EvictOneFromQuarantine();
  }
  quarantine_gauge_->Set(static_cast<int64_t>(quarantine_bytes_used_));
  space.machine().tracer().RecordInstant(
      obs::TraceCat::kAlloc, "alloc.quarantine",
      space.machine().context().compartment + 1, user_size,
      quarantine_bytes_used_);
  return Status::Ok();
}

void HardenedHeap::EvictOneFromQuarantine() {
  const Quarantined entry = quarantine_.front();
  quarantine_.pop_front();
  quarantine_bytes_used_ -= entry.user_size;
  AddressSpace& space = backing_.space();
  const Gaddr block = entry.user_addr - kRedzone;
  const uint64_t padded = AlignUp(entry.user_size, kShadowGranule);
  // Clear all poison we own before handing the block back.
  space.Unpoison(block, kRedzone + padded + kRedzone);
  const Status status = backing_.Free(block);
  FLEXOS_CHECK(status.ok(), "backing free failed: %s",
               status.ToString().c_str());
  quarantine_gauge_->Set(static_cast<int64_t>(quarantine_bytes_used_));
}

Status HardenedHeap::Reset() {
  // Clear every shadow byte we own — live payloads, redzones, and
  // quarantined blocks — then rebuild the backing wholesale. Skipping the
  // unpoison would leave stale redzones over memory the reset backing is
  // free to hand out again.
  AddressSpace& space = backing_.space();
  for (const auto& [user, user_size] : live_) {
    const uint64_t padded = AlignUp(user_size, kShadowGranule);
    space.Unpoison(user - kRedzone, kRedzone + padded + kRedzone);
  }
  live_.clear();
  for (const Quarantined& entry : quarantine_) {
    const uint64_t padded = AlignUp(entry.user_size, kShadowGranule);
    space.Unpoison(entry.user_addr - kRedzone, kRedzone + padded + kRedzone);
  }
  quarantine_.clear();
  quarantine_bytes_used_ = 0;
  quarantine_gauge_->Set(0);
  stats_.bytes_in_use = 0;
  return backing_.Reset();
}

Result<uint64_t> HardenedHeap::UsableSize(Gaddr addr) const {
  auto it = live_.find(addr);
  if (it == live_.end()) {
    return Status(ErrorCode::kNotFound, "not live");
  }
  return it->second;
}

}  // namespace flexos
