// A bump ("region") allocator: O(1) allocation, no per-object free. Used for
// boot-time/static allocations inside an image compartment.
#ifndef FLEXOS_ALLOC_REGION_ALLOCATOR_H_
#define FLEXOS_ALLOC_REGION_ALLOCATOR_H_

#include "alloc/allocator.h"

namespace flexos {

class RegionAllocator final : public Allocator {
 public:
  // Manages [base, base + size) of `space` (must already be mapped).
  RegionAllocator(AddressSpace& space, Gaddr base, uint64_t size);

  Result<Gaddr> Allocate(uint64_t size, uint64_t align = 16) override;

  // Individual frees are no-ops by design (returns OK for live pointers so
  // callers can treat a region like a heap during boot).
  Status Free(Gaddr addr) override;

  Result<uint64_t> UsableSize(Gaddr addr) const override;

  // Releases everything at once.
  Status Reset() override;

  uint64_t remaining() const { return base_ + size_ - cursor_; }

  AddressSpace& space() override { return space_; }
  const AllocStats& stats() const override { return stats_; }

 private:
  AddressSpace& space_;
  Gaddr base_;
  uint64_t size_;
  Gaddr cursor_;
  AllocStats stats_;
};

}  // namespace flexos

#endif  // FLEXOS_ALLOC_REGION_ALLOCATOR_H_
