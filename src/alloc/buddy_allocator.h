// A classic binary-buddy allocator (the style Unikraft's ukallocbbuddy
// uses). Block sizes are powers of two from kMinBlock up to the arena size;
// free buddies coalesce eagerly.
#ifndef FLEXOS_ALLOC_BUDDY_ALLOCATOR_H_
#define FLEXOS_ALLOC_BUDDY_ALLOCATOR_H_

#include <cstdint>
#include <unordered_map>
#include <unordered_set>
#include <vector>

#include "alloc/allocator.h"

namespace flexos {

class BuddyAllocator final : public Allocator {
 public:
  static constexpr uint64_t kMinBlock = 64;

  // Manages [base, base + size); size must be a power of two >= kMinBlock
  // and base must be size-aligned relative to itself (we treat base as
  // offset 0 internally, so any base works).
  BuddyAllocator(AddressSpace& space, Gaddr base, uint64_t size);

  Result<Gaddr> Allocate(uint64_t size, uint64_t align = 16) override;
  Status Free(Gaddr addr) override;
  Result<uint64_t> UsableSize(Gaddr addr) const override;
  Status Reset() override;

  AddressSpace& space() override { return space_; }
  const AllocStats& stats() const override { return stats_; }

  // Total bytes of free blocks (diagnostics / invariant tests).
  uint64_t FreeBytes() const;

  // Verifies internal invariants (no overlapping free blocks, buddies not
  // both free, all blocks within the arena). Test hook; O(n).
  bool CheckInvariants() const;

 private:
  int OrderFor(uint64_t size) const;

  AddressSpace& space_;
  Gaddr base_;
  uint64_t size_;
  int max_order_;
  // free_lists_[order] holds offsets (relative to base_) of free blocks.
  std::vector<std::unordered_set<uint64_t>> free_lists_;
  // Live allocations: offset -> order.
  std::unordered_map<uint64_t, int> live_;
  AllocStats stats_;
};

}  // namespace flexos

#endif  // FLEXOS_ALLOC_BUDDY_ALLOCATOR_H_
