// HardenedHeap: the ASAN-style instrumented allocator FlexOS installs in
// compartments running with software hardening. Wraps any backing allocator
// with guard redzones, shadow poisoning, and a bounded free-quarantine —
// the checks are real (tests trip them); costs come from the cost model.
//
// A key FlexOS requirement (paper §3, "SH Support"): hardened compartments
// need their *own* allocator so uninstrumented compartments do not pay the
// instrumented-malloc tax. The AllocatorRegistry (allocator_registry.h)
// wires that policy.
#ifndef FLEXOS_ALLOC_HARDENED_HEAP_H_
#define FLEXOS_ALLOC_HARDENED_HEAP_H_

#include <cstdint>
#include <deque>
#include <unordered_map>

#include "alloc/allocator.h"
#include "obs/metrics.h"

namespace flexos {

class HardenedHeap final : public Allocator {
 public:
  static constexpr uint64_t kRedzone = 32;  // Bytes on each side, granule-multiple.
  static constexpr uint64_t kDefaultQuarantineBytes = 1 << 18;

  // Does not take ownership of `backing`; it must outlive this object.
  HardenedHeap(Allocator& backing,
               uint64_t quarantine_bytes = kDefaultQuarantineBytes);
  ~HardenedHeap() override;

  Result<Gaddr> Allocate(uint64_t size, uint64_t align = 16) override;
  Status Free(Gaddr addr) override;
  Result<uint64_t> UsableSize(Gaddr addr) const override;
  Status Reset() override;

  AddressSpace& space() override { return backing_.space(); }
  const AllocStats& stats() const override { return stats_; }

  uint64_t quarantined_bytes() const { return quarantine_bytes_used_; }

 private:
  struct Quarantined {
    Gaddr user_addr;
    uint64_t user_size;
  };

  void EvictOneFromQuarantine();

  Allocator& backing_;
  uint64_t quarantine_capacity_;
  uint64_t quarantine_bytes_used_ = 0;
  std::deque<Quarantined> quarantine_;
  // user addr -> user size, for live allocations.
  std::unordered_map<Gaddr, uint64_t> live_;
  AllocStats stats_;
  // Bytes parked in the free-quarantine (alloc.quarantine_bytes). The
  // generic alloc.* counters are recorded by the backing allocator — this
  // wrapper only adds what the backing cannot see.
  obs::Gauge* quarantine_gauge_;
};

}  // namespace flexos

#endif  // FLEXOS_ALLOC_HARDENED_HEAP_H_
