// A first-fit free-list heap with address-ordered coalescing — the
// general-purpose malloc of a FlexOS compartment. Metadata is host-side (a
// std::map keyed by offset), standing in for the allocator's in-band
// headers.
#ifndef FLEXOS_ALLOC_FREELIST_HEAP_H_
#define FLEXOS_ALLOC_FREELIST_HEAP_H_

#include <cstdint>
#include <map>

#include "alloc/allocator.h"
#include "obs/metrics.h"

namespace flexos {

class FreelistHeap final : public Allocator {
 public:
  FreelistHeap(AddressSpace& space, Gaddr base, uint64_t size);

  Result<Gaddr> Allocate(uint64_t size, uint64_t align = 16) override;
  Status Free(Gaddr addr) override;
  Result<uint64_t> UsableSize(Gaddr addr) const override;
  Status Reset() override;

  AddressSpace& space() override { return space_; }
  const AllocStats& stats() const override { return stats_; }

  uint64_t FreeBytes() const;

  // Invariant check: chunks tile the arena exactly, no two adjacent free
  // chunks (coalescing holds), live/free flags consistent. Test hook; O(n).
  bool CheckInvariants() const;

 private:
  struct Chunk {
    uint64_t size;
    bool free;
    // For live chunks created with alignment padding, the distance from the
    // chunk start to the address handed to the user (0 when unpadded).
    uint64_t user_offset;
  };

  AddressSpace& space_;
  Gaddr base_;
  uint64_t size_;
  // offset -> chunk; offsets are relative to base_ and tile [0, size_).
  std::map<uint64_t, Chunk> chunks_;
  // user address offset -> chunk offset, for padded allocations.
  std::map<uint64_t, uint64_t> user_to_chunk_;
  AllocStats stats_;
  // Machine-wide allocator metrics (obs/names.h), aggregated across heaps;
  // resolved once from the machine's registry at construction.
  obs::Counter* alloc_counter_;
  obs::Counter* free_counter_;
  obs::Counter* alloc_bytes_counter_;
  obs::Gauge* live_bytes_gauge_;
};

}  // namespace flexos

#endif  // FLEXOS_ALLOC_FREELIST_HEAP_H_
