// Counting semaphore built on the scheduler's wait queues. Deliberately part
// of the *LibC* micro-library: the paper's Fig. 5 analysis hinges on
// semaphores living in the LibC compartment, so that merging the network
// stack and the scheduler into one compartment still pays gate crossings for
// every wait-queue operation.
#ifndef FLEXOS_LIBC_SEMAPHORE_H_
#define FLEXOS_LIBC_SEMAPHORE_H_

#include <cstdint>
#include <string>

#include "sched/scheduler.h"
#include "sched/wait_queue.h"
#include "support/gate_router.h"

namespace flexos {

class Semaphore {
 public:
  // When a router is supplied, scheduler operations are routed as
  // libc -> sched gate calls (the crossings Fig. 5 measures). Without one,
  // calls are direct. The route is resolved once here: Wait/Signal sit on
  // every packet's path and must not pay per-call name lookups.
  Semaphore(Scheduler& scheduler, std::string name, uint64_t initial = 0,
            GateRouter* router = nullptr)
      : scheduler_(scheduler),
        router_(router),
        queue_(name + ".waitq"),
        count_(initial) {
    if (router_ != nullptr) {
      sched_route_ = router_->Resolve(kLibLibc, kLibSched);
    }
  }

  Semaphore(const Semaphore&) = delete;
  Semaphore& operator=(const Semaphore&) = delete;

  // Decrements, blocking the current thread while the count is zero.
  void Wait();

  // Attempts to decrement without blocking.
  bool TryWait();

  // Increments and wakes one waiter if any.
  void Signal();

  uint64_t count() const { return count_; }
  size_t waiters() const { return queue_.size(); }

 private:
  void SchedCall(FunctionRef<void()> body);

  Scheduler& scheduler_;
  GateRouter* router_;
  RouteHandle sched_route_;
  WaitQueue queue_;
  uint64_t count_;
};

}  // namespace flexos

#endif  // FLEXOS_LIBC_SEMAPHORE_H_
