#include "libc/ring_buffer.h"

#include <algorithm>

namespace flexos {

RingBuffer RingBuffer::Create(AddressSpace& space, Gaddr base,
                              uint64_t capacity) {
  FLEXOS_CHECK(capacity > 0, "ring capacity must be positive");
  space.WriteT<uint64_t>(base + kHeadOff, 0);
  space.WriteT<uint64_t>(base + kTailOff, 0);
  space.WriteT<uint64_t>(base + kCapOff, capacity);
  return RingBuffer(space, base, capacity);
}

RingBuffer RingBuffer::Attach(AddressSpace& space, Gaddr base) {
  const uint64_t capacity = space.ReadT<uint64_t>(base + kCapOff);
  FLEXOS_CHECK(capacity > 0, "attaching to uninitialized ring");
  return RingBuffer(space, base, capacity);
}

uint64_t RingBuffer::ReadableBytes() const { return tail() - head(); }

uint64_t RingBuffer::Push(const void* data, uint64_t size) {
  const uint64_t to_write = std::min(size, WritableBytes());
  uint64_t written = 0;
  uint64_t t = tail();
  while (written < to_write) {
    const uint64_t offset = t % capacity_;
    const uint64_t span = std::min(to_write - written, capacity_ - offset);
    space_->Write(data_base() + offset,
                  static_cast<const uint8_t*>(data) + written, span);
    written += span;
    t += span;
  }
  set_tail(t);
  return written;
}

uint64_t RingBuffer::Pop(void* data, uint64_t size) {
  const uint64_t to_read = std::min(size, ReadableBytes());
  uint64_t read = 0;
  uint64_t h = head();
  while (read < to_read) {
    const uint64_t offset = h % capacity_;
    const uint64_t span = std::min(to_read - read, capacity_ - offset);
    space_->Read(data_base() + offset, static_cast<uint8_t*>(data) + read,
                 span);
    read += span;
    h += span;
  }
  set_head(h);
  return read;
}

void RingBuffer::Peek(uint64_t offset, void* data, uint64_t size) const {
  FLEXOS_CHECK(offset + size <= ReadableBytes(), "Peek beyond readable data");
  uint64_t read = 0;
  uint64_t h = head() + offset;
  while (read < size) {
    const uint64_t ring_off = h % capacity_;
    const uint64_t span = std::min(size - read, capacity_ - ring_off);
    space_->Read(data_base() + ring_off, static_cast<uint8_t*>(data) + read,
                 span);
    read += span;
    h += span;
  }
}

void RingBuffer::Discard(uint64_t size) {
  FLEXOS_CHECK(size <= ReadableBytes(), "Discard beyond readable data");
  set_head(head() + size);
}

uint64_t RingBuffer::PushFromGuest(Gaddr src, uint64_t size) {
  const uint64_t to_write = std::min(size, WritableBytes());
  uint64_t written = 0;
  uint64_t t = tail();
  while (written < to_write) {
    const uint64_t offset = t % capacity_;
    const uint64_t span = std::min(to_write - written, capacity_ - offset);
    space_->Copy(data_base() + offset, src + written, span);
    written += span;
    t += span;
  }
  set_tail(t);
  return written;
}

uint64_t RingBuffer::PopToGuest(Gaddr dst, uint64_t size) {
  const uint64_t to_read = std::min(size, ReadableBytes());
  uint64_t read = 0;
  uint64_t h = head();
  while (read < to_read) {
    const uint64_t offset = h % capacity_;
    const uint64_t span = std::min(to_read - read, capacity_ - offset);
    space_->Copy(dst + read, data_base() + offset, span);
    read += span;
    h += span;
  }
  set_head(h);
  return read;
}

}  // namespace flexos
