// Bounded message queue micro-library — one of the paper's three named
// example micro-libs ("a scheduler, a memory allocator or a message queue
// are all micro-libs"). Messages live in guest memory; blocking uses LibC
// semaphores, so cross-compartment producers/consumers pay gate crossings
// exactly like the netstack's wait queues do.
#ifndef FLEXOS_LIBC_MSG_QUEUE_H_
#define FLEXOS_LIBC_MSG_QUEUE_H_

#include <cstdint>
#include <memory>
#include <string>

#include "alloc/allocator.h"
#include "libc/semaphore.h"
#include "support/gate_router.h"

namespace flexos {

class MsgQueue {
 public:
  // Creates a queue holding up to `depth` messages of at most
  // `max_msg_bytes` each; storage comes from `allocator`'s compartment.
  static Result<std::unique_ptr<MsgQueue>> Create(
      Scheduler& scheduler, Allocator& allocator, std::string name,
      uint32_t depth, uint32_t max_msg_bytes, GateRouter* router = nullptr);

  ~MsgQueue();

  MsgQueue(const MsgQueue&) = delete;
  MsgQueue& operator=(const MsgQueue&) = delete;

  // Copies [addr, addr+size) into the queue; blocks while full.
  // size must be <= max_msg_bytes.
  Status Send(Gaddr addr, uint32_t size);

  // Non-blocking variant; kWouldBlock when full.
  Status TrySend(Gaddr addr, uint32_t size);

  // Blocks until a message is available; copies it to [addr, addr+cap)
  // and returns its full size (kOutOfRange if cap is too small — the
  // message is left queued).
  Result<uint32_t> Recv(Gaddr addr, uint32_t cap);

  // Non-blocking variant; kWouldBlock when empty.
  Result<uint32_t> TryRecv(Gaddr addr, uint32_t cap);

  uint32_t depth() const { return depth_; }
  uint32_t max_msg_bytes() const { return max_msg_bytes_; }
  uint32_t size() const { return count_; }
  bool Empty() const { return count_ == 0; }
  bool Full() const { return count_ == depth_; }

  uint64_t messages_sent() const { return messages_sent_; }

 private:
  MsgQueue(Scheduler& scheduler, Allocator& allocator, std::string name,
           uint32_t depth, uint32_t max_msg_bytes, GateRouter* router);

  // Guest address of slot i's payload / its length header.
  Gaddr SlotPayload(uint32_t index) const;
  Gaddr SlotHeader(uint32_t index) const;

  Scheduler& scheduler_;
  Allocator& allocator_;
  std::string name_;
  uint32_t depth_;
  uint32_t max_msg_bytes_;
  Gaddr storage_ = 0;

  uint32_t head_ = 0;  // Next slot to receive from.
  uint32_t count_ = 0;
  uint64_t messages_sent_ = 0;

  Semaphore slots_free_;
  Semaphore msgs_ready_;
};

}  // namespace flexos

#endif  // FLEXOS_LIBC_MSG_QUEUE_H_
