// Formatting into and parsing out of guest memory (the RESP protocol code
// in apps/ builds on these).
#ifndef FLEXOS_LIBC_FORMAT_H_
#define FLEXOS_LIBC_FORMAT_H_

#include <cstdint>
#include <optional>
#include <string>

#include "vmem/address_space.h"

namespace flexos {

// snprintf-style formatting into guest memory at `dst` (at most `cap`
// bytes including the terminating NUL). Returns the number of payload
// bytes written (excluding NUL).
uint64_t GFormat(AddressSpace& space, Gaddr dst, uint64_t cap,
                 const char* format, ...)
    __attribute__((format(printf, 4, 5)));

// Parses a decimal integer from guest memory (up to `max` bytes, stops at
// the first non-digit). Returns nullopt if no digit was found.
std::optional<int64_t> GParseDecimal(AddressSpace& space, Gaddr src,
                                     uint64_t max);

}  // namespace flexos

#endif  // FLEXOS_LIBC_FORMAT_H_
