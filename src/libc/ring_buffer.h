// A single-producer/single-consumer byte ring living entirely in guest
// memory, so it can be placed in a shared region and used across
// compartments (socket buffers, the VM-gate message channel). The control
// block (head/tail/capacity) is stored in-band at the base address.
#ifndef FLEXOS_LIBC_RING_BUFFER_H_
#define FLEXOS_LIBC_RING_BUFFER_H_

#include <cstdint>

#include "vmem/address_space.h"

namespace flexos {

class RingBuffer {
 public:
  // Bytes needed in guest memory for a ring holding `capacity` bytes.
  static uint64_t FootprintBytes(uint64_t capacity) {
    return kHeaderSize + capacity;
  }

  // Initializes a fresh ring at `base` (writes the control block).
  static RingBuffer Create(AddressSpace& space, Gaddr base,
                           uint64_t capacity);

  // Attaches to an existing ring previously initialized with Create —
  // possibly through a different address space aliasing the same pages.
  static RingBuffer Attach(AddressSpace& space, Gaddr base);

  uint64_t capacity() const { return capacity_; }
  uint64_t ReadableBytes() const;
  uint64_t WritableBytes() const { return capacity_ - ReadableBytes(); }
  bool Empty() const { return ReadableBytes() == 0; }
  bool Full() const { return WritableBytes() == 0; }

  // Pushes up to `size` bytes from host memory; returns bytes accepted.
  uint64_t Push(const void* data, uint64_t size);

  // Pops up to `size` bytes into host memory; returns bytes produced.
  uint64_t Pop(void* data, uint64_t size);

  // Guest-to-guest variants (data stays in guest memory, still charged).
  uint64_t PushFromGuest(Gaddr src, uint64_t size);
  uint64_t PopToGuest(Gaddr dst, uint64_t size);

  // Reads `size` bytes starting `offset` bytes past the head without
  // consuming them (TCP uses this to (re)build in-flight segments from the
  // send ring). offset+size must be within the readable region.
  void Peek(uint64_t offset, void* data, uint64_t size) const;

  // Drops `size` bytes from the head without copying (acked data).
  // size must be <= ReadableBytes().
  void Discard(uint64_t size);

 private:
  static constexpr uint64_t kHeaderSize = 24;  // head u64, tail u64, cap u64.
  static constexpr uint64_t kHeadOff = 0;
  static constexpr uint64_t kTailOff = 8;
  static constexpr uint64_t kCapOff = 16;

  RingBuffer(AddressSpace& space, Gaddr base, uint64_t capacity)
      : space_(&space), base_(base), capacity_(capacity) {}

  uint64_t head() const { return space_->ReadT<uint64_t>(base_ + kHeadOff); }
  uint64_t tail() const { return space_->ReadT<uint64_t>(base_ + kTailOff); }
  void set_head(uint64_t v) { space_->WriteT<uint64_t>(base_ + kHeadOff, v); }
  void set_tail(uint64_t v) { space_->WriteT<uint64_t>(base_ + kTailOff, v); }

  Gaddr data_base() const { return base_ + kHeaderSize; }

  AddressSpace* space_;
  Gaddr base_;
  uint64_t capacity_;
};

}  // namespace flexos

#endif  // FLEXOS_LIBC_RING_BUFFER_H_
