#include "libc/format.h"

#include <cstdarg>
#include <cstdio>
#include <vector>

namespace flexos {

uint64_t GFormat(AddressSpace& space, Gaddr dst, uint64_t cap,
                 const char* format, ...) {
  if (cap == 0) {
    return 0;
  }
  va_list args;
  va_start(args, format);
  std::vector<char> buffer(cap);
  const int written = std::vsnprintf(buffer.data(), cap, format, args);
  va_end(args);
  if (written < 0) {
    return 0;
  }
  const uint64_t payload =
      std::min<uint64_t>(static_cast<uint64_t>(written), cap - 1);
  space.Write(dst, buffer.data(), payload + 1);  // Include the NUL.
  return payload;
}

std::optional<int64_t> GParseDecimal(AddressSpace& space, Gaddr src,
                                     uint64_t max) {
  int64_t value = 0;
  bool negative = false;
  bool any_digit = false;
  uint64_t index = 0;
  if (max == 0) {
    return std::nullopt;
  }
  uint8_t byte = space.ReadT<uint8_t>(src);
  if (byte == '-') {
    negative = true;
    ++index;
  }
  while (index < max) {
    byte = space.ReadT<uint8_t>(src + index);
    if (byte < '0' || byte > '9') {
      break;
    }
    value = value * 10 + (byte - '0');
    any_digit = true;
    ++index;
  }
  if (!any_digit) {
    return std::nullopt;
  }
  return negative ? -value : value;
}

}  // namespace flexos
