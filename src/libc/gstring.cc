#include "libc/gstring.h"

#include <algorithm>
#include <cstring>

namespace flexos {
namespace {

constexpr uint64_t kChunk = 256;

}  // namespace

void GMemcpy(AddressSpace& space, Gaddr dst, Gaddr src, uint64_t size) {
  space.Copy(dst, src, size);
}

void GMemset(AddressSpace& space, Gaddr dst, uint8_t value, uint64_t size) {
  space.Fill(dst, value, size);
}

int GMemcmp(AddressSpace& space, Gaddr a, Gaddr b, uint64_t size) {
  uint8_t buf_a[kChunk];
  uint8_t buf_b[kChunk];
  uint64_t done = 0;
  while (done < size) {
    const uint64_t span = std::min(size - done, kChunk);
    space.Read(a + done, buf_a, span);
    space.Read(b + done, buf_b, span);
    const int cmp = std::memcmp(buf_a, buf_b, span);
    if (cmp != 0) {
      return cmp;
    }
    done += span;
  }
  return 0;
}

uint64_t GStrlen(AddressSpace& space, Gaddr str, uint64_t max) {
  uint8_t buf[kChunk];
  uint64_t done = 0;
  while (done < max) {
    const uint64_t span = std::min(max - done, kChunk);
    space.Read(str + done, buf, span);
    for (uint64_t i = 0; i < span; ++i) {
      if (buf[i] == '\0') {
        return done + i;
      }
    }
    done += span;
  }
  return max;
}

void GStrcpyIn(AddressSpace& space, Gaddr dst, const std::string& value) {
  space.Write(dst, value.c_str(), value.size() + 1);
}

std::string GStrOut(AddressSpace& space, Gaddr src, uint64_t max) {
  const uint64_t len = GStrlen(space, src, max);
  std::string out(len, '\0');
  if (len > 0) {
    space.Read(src, out.data(), len);
  }
  return out;
}

}  // namespace flexos
