// Guest-memory string and memory routines — the FlexOS mini-libc. All
// routines go through the checked access layer, so they are subject to PKRU
// and shadow checks and charge modeled cycles (instrumented compartments
// automatically pay the SH multiplier).
#ifndef FLEXOS_LIBC_GSTRING_H_
#define FLEXOS_LIBC_GSTRING_H_

#include <cstdint>
#include <string>

#include "vmem/address_space.h"

namespace flexos {

// memcpy within one guest address space (regions must not overlap).
void GMemcpy(AddressSpace& space, Gaddr dst, Gaddr src, uint64_t size);

// memset.
void GMemset(AddressSpace& space, Gaddr dst, uint8_t value, uint64_t size);

// memcmp: <0, 0, >0 like the C function.
int GMemcmp(AddressSpace& space, Gaddr a, Gaddr b, uint64_t size);

// strlen of a NUL-terminated guest string, scanning at most `max` bytes.
// Returns max if no NUL was found.
uint64_t GStrlen(AddressSpace& space, Gaddr str, uint64_t max);

// Copies a host string (including NUL) into guest memory.
void GStrcpyIn(AddressSpace& space, Gaddr dst, const std::string& value);

// Reads a NUL-terminated guest string of at most `max` bytes.
std::string GStrOut(AddressSpace& space, Gaddr src, uint64_t max);

}  // namespace flexos

#endif  // FLEXOS_LIBC_GSTRING_H_
