#include "libc/msg_queue.h"

namespace flexos {
namespace {

constexpr uint32_t kHeaderBytes = 8;  // Per-slot length header (u32 + pad).

}  // namespace

MsgQueue::MsgQueue(Scheduler& scheduler, Allocator& allocator,
                   std::string name, uint32_t depth, uint32_t max_msg_bytes,
                   GateRouter* router)
    : scheduler_(scheduler),
      allocator_(allocator),
      name_(std::move(name)),
      depth_(depth),
      max_msg_bytes_(max_msg_bytes),
      slots_free_(scheduler, name_ + ".free", depth, router),
      msgs_ready_(scheduler, name_ + ".ready", 0, router) {}

Result<std::unique_ptr<MsgQueue>> MsgQueue::Create(
    Scheduler& scheduler, Allocator& allocator, std::string name,
    uint32_t depth, uint32_t max_msg_bytes, GateRouter* router) {
  if (depth == 0 || max_msg_bytes == 0) {
    return Status(ErrorCode::kInvalidArgument,
                  "queue depth and message size must be positive");
  }
  auto queue = std::unique_ptr<MsgQueue>(new MsgQueue(
      scheduler, allocator, std::move(name), depth, max_msg_bytes, router));
  const uint64_t bytes =
      static_cast<uint64_t>(depth) * (kHeaderBytes + max_msg_bytes);
  FLEXOS_ASSIGN_OR_RETURN(queue->storage_,
                          allocator.Allocate(bytes, kShadowGranule));
  return queue;
}

MsgQueue::~MsgQueue() {
  if (storage_ != 0) {
    (void)allocator_.Free(storage_);
  }
}

Gaddr MsgQueue::SlotHeader(uint32_t index) const {
  return storage_ +
         static_cast<uint64_t>(index) * (kHeaderBytes + max_msg_bytes_);
}

Gaddr MsgQueue::SlotPayload(uint32_t index) const {
  return SlotHeader(index) + kHeaderBytes;
}

Status MsgQueue::Send(Gaddr addr, uint32_t size) {
  if (size > max_msg_bytes_) {
    return Status(ErrorCode::kInvalidArgument, "message exceeds slot size");
  }
  slots_free_.Wait();
  const uint32_t slot = (head_ + count_) % depth_;
  AddressSpace& space = allocator_.space();
  space.WriteT<uint32_t>(SlotHeader(slot), size);
  if (size > 0) {
    space.Copy(SlotPayload(slot), addr, size);
  }
  ++count_;
  ++messages_sent_;
  msgs_ready_.Signal();
  return Status::Ok();
}

Status MsgQueue::TrySend(Gaddr addr, uint32_t size) {
  if (size > max_msg_bytes_) {
    return Status(ErrorCode::kInvalidArgument, "message exceeds slot size");
  }
  if (!slots_free_.TryWait()) {
    return Status(ErrorCode::kWouldBlock, "queue full");
  }
  const uint32_t slot = (head_ + count_) % depth_;
  AddressSpace& space = allocator_.space();
  space.WriteT<uint32_t>(SlotHeader(slot), size);
  if (size > 0) {
    space.Copy(SlotPayload(slot), addr, size);
  }
  ++count_;
  ++messages_sent_;
  msgs_ready_.Signal();
  return Status::Ok();
}

Result<uint32_t> MsgQueue::Recv(Gaddr addr, uint32_t cap) {
  msgs_ready_.Wait();
  AddressSpace& space = allocator_.space();
  const uint32_t size = space.ReadT<uint32_t>(SlotHeader(head_));
  if (size > cap) {
    // Leave the message queued; the caller's buffer is too small.
    msgs_ready_.Signal();
    return Status(ErrorCode::kOutOfRange, "buffer smaller than message");
  }
  if (size > 0) {
    space.Copy(addr, SlotPayload(head_), size);
  }
  head_ = (head_ + 1) % depth_;
  --count_;
  slots_free_.Signal();
  return size;
}

Result<uint32_t> MsgQueue::TryRecv(Gaddr addr, uint32_t cap) {
  if (!msgs_ready_.TryWait()) {
    return Status(ErrorCode::kWouldBlock, "queue empty");
  }
  AddressSpace& space = allocator_.space();
  const uint32_t size = space.ReadT<uint32_t>(SlotHeader(head_));
  if (size > cap) {
    msgs_ready_.Signal();
    return Status(ErrorCode::kOutOfRange, "buffer smaller than message");
  }
  if (size > 0) {
    space.Copy(addr, SlotPayload(head_), size);
  }
  head_ = (head_ + 1) % depth_;
  --count_;
  slots_free_.Signal();
  return size;
}

}  // namespace flexos
