#include "libc/semaphore.h"

namespace flexos {

void Semaphore::SchedCall(FunctionRef<void()> body) {
  if (router_ != nullptr) {
    router_->Call(sched_route_, body);
  } else {
    body();
  }
}

void Semaphore::Wait() {
  while (count_ == 0) {
    SchedCall([this] { scheduler_.BlockOn(queue_); });
  }
  --count_;
}

bool Semaphore::TryWait() {
  if (count_ == 0) {
    return false;
  }
  --count_;
  return true;
}

void Semaphore::Signal() {
  ++count_;
  SchedCall([this] { scheduler_.WakeOne(queue_); });
}

}  // namespace flexos
