#include "apps/redis_server.h"

#include "support/log.h"
#include "support/strings.h"

namespace flexos {
namespace {

// Parses "<digits>\r\n" at `pos`; advances pos past the terminator.
// Returns nullopt if incomplete, -2 as the value on malformed input.
std::optional<int64_t> ParseRespInt(std::string_view data, size_t* pos) {
  const size_t end = data.find("\r\n", *pos);
  if (end == std::string_view::npos) {
    return std::nullopt;
  }
  std::string_view digits = data.substr(*pos, end - *pos);
  bool negative = false;
  if (!digits.empty() && digits.front() == '-') {
    negative = true;
    digits.remove_prefix(1);
  }
  const std::optional<uint64_t> value = ParseU64(digits);
  if (!value.has_value()) {
    return -2;
  }
  *pos = end + 2;
  const int64_t magnitude = static_cast<int64_t>(*value);
  return negative ? -magnitude : magnitude;
}

}  // namespace

int64_t ParseRespCommand(std::string_view data, RespCommand* out) {
  if (data.empty()) {
    return 0;
  }
  if (data[0] != '*') {
    return -1;
  }
  size_t pos = 1;
  const std::optional<int64_t> count = ParseRespInt(data, &pos);
  if (!count.has_value()) {
    return 0;
  }
  if (*count < 1 || *count > 64) {
    return -1;
  }
  out->args.clear();
  for (int64_t i = 0; i < *count; ++i) {
    if (pos >= data.size()) {
      return 0;
    }
    if (data[pos] != '$') {
      return -1;
    }
    ++pos;
    const std::optional<int64_t> len = ParseRespInt(data, &pos);
    if (!len.has_value()) {
      return 0;
    }
    if (*len < 0 || *len > 1 << 20) {
      return -1;
    }
    const size_t need = static_cast<size_t>(*len);
    if (data.size() - pos < need + 2) {
      return 0;
    }
    out->args.emplace_back(data.substr(pos, need));
    pos += need;
    if (data.substr(pos, 2) != "\r\n") {
      return -1;
    }
    pos += 2;
  }
  return static_cast<int64_t>(pos);
}

std::string EncodeRespCommand(const std::vector<std::string>& args) {
  std::string out = StrFormat("*%zu\r\n", args.size());
  for (const std::string& arg : args) {
    out += StrFormat("$%zu\r\n", arg.size());
    out += arg;
    out += "\r\n";
  }
  return out;
}

int64_t RespReplyLength(std::string_view data) {
  if (data.empty()) {
    return 0;
  }
  if (data[0] == '+' || data[0] == '-' || data[0] == ':') {
    const size_t end = data.find("\r\n");
    if (end == std::string_view::npos) {
      return 0;
    }
    return static_cast<int64_t>(end + 2);
  }
  if (data[0] == '$') {
    size_t pos = 1;
    const std::optional<int64_t> len = ParseRespInt(data, &pos);
    if (!len.has_value()) {
      return 0;
    }
    if (*len == -1) {
      return static_cast<int64_t>(pos);  // Null bulk: "$-1\r\n".
    }
    if (*len < 0) {
      return -1;
    }
    const size_t need = static_cast<size_t>(*len) + 2;
    if (data.size() - pos < need) {
      return 0;
    }
    return static_cast<int64_t>(pos + need);
  }
  return -1;
}

namespace {

struct RedisValue {
  Gaddr addr;
  uint64_t size;
};

// Degraded-mode crossing into the net compartment: a quarantined or
// trapped callee comes back kUnavailable instead of crashing the image.
// Between retries, wait out a pending quarantine window by yielding until
// the supervisor's restart deadline — context switches charge cycles, so
// virtual time reaches the deadline and the next attempt re-admits (and
// restarts) the compartment. Gives up once the retry budget is spent or
// when no restart is pending (unsupervised image, or a permanently failed
// compartment).
bool NetCallWithRetry(Testbed& bed, const RouteHandle& route,
                      uint64_t* unavailable_errors,
                      FunctionRef<void()> body) {
  constexpr int kNetRetries = 8;
  Image& image = bed.image();
  Clock& clock = bed.machine().clock();
  for (int attempt = 0; attempt < kNetRetries; ++attempt) {
    const Status status = image.TryCall(route, body);
    if (status.ok()) {
      return true;
    }
    ++*unavailable_errors;
    const uint64_t deadline =
        bed.supervisor() != nullptr
            ? bed.supervisor()->NextRestartCycles()
            : fault::CompartmentSupervisor::kNoRestartPending;
    if (deadline == fault::CompartmentSupervisor::kNoRestartPending) {
      bed.scheduler().Yield();
      continue;
    }
    while (clock.cycles() < deadline) {
      const uint64_t before = clock.cycles();
      bed.scheduler().Yield();
      if (clock.cycles() == before) {
        break;  // Zero-cost switches would pin the clock: don't spin.
      }
    }
  }
  return false;
}

// State shared by every connection handler (single vCPU, cooperative
// scheduling: handlers never interleave inside a store operation).
struct RedisSharedState {
  std::unordered_map<std::string, RedisValue> store;
  int handlers_live = 0;
  bool all_accepted = false;
};

void HandleRedisConnection(Testbed& bed, const RedisServerOptions& options,
                           int conn,
                           const std::shared_ptr<RedisSharedState>& state,
                           RedisServerResult* result) {
  Machine& machine = bed.machine();
  Image& image = bed.image();
  AddressSpace& space = image.SpaceOf(kLibApp);
  Allocator& heap = image.AllocatorOf(kLibApp);
  TcpEngine& tcp = bed.stack().tcp();
  const RouteHandle app_to_net = image.Resolve(kLibApp, kLibNet);
  const RouteHandle app_to_libc = image.Resolve(kLibApp, kLibLibc);

  const Gaddr recv_buf = bed.AllocShared(options.recv_buffer_bytes);
  const Gaddr resp_buf = bed.AllocShared(options.resp_buffer_bytes);
  auto& store = state->store;

  auto net_call = [&](FunctionRef<void()> body) -> bool {
    return NetCallWithRetry(bed, app_to_net, &result->unavailable_errors,
                            body);
  };

  std::string acc;
  std::vector<uint8_t> mirror(options.recv_buffer_bytes);
  bool closed = false;

  while (!closed) {
    uint64_t received = 0;
    const bool net_ok = net_call([&] {
      Result<uint64_t> r =
          tcp.Recv(conn, recv_buf, options.recv_buffer_bytes);
      if (!r.ok()) {
        FLEXOS_WARN("redis recv failed: %s", r.status().ToString().c_str());
        result->ok = false;
        closed = true;
        return;
      }
      received = r.value();
    });
    if (!net_ok || closed || received == 0) {
      break;
    }
    // Parse cost: the protocol parser touches every byte (app context).
    machine.ChargeCompute(received);
    machine.ChargeMemOp(received);
    space.ReadUnchecked(recv_buf, mirror.data(), received);
    acc.append(reinterpret_cast<char*>(mirror.data()), received);

    std::string pending_out;
    for (;;) {
      RespCommand command;
      const int64_t consumed = ParseRespCommand(acc, &command);
      if (consumed == 0) {
        break;
      }
      if (consumed < 0) {
        ++result->protocol_errors;
        pending_out += "-ERR protocol error\r\n";
        acc.clear();
        break;
      }
      acc.erase(0, static_cast<size_t>(consumed));
      ++result->commands;

      // Hash-table probe cost.
      machine.ChargeCompute(80);
      machine.ChargeMemOp(48);

      const std::string& op = command.args[0];
      if (op == "SET" && command.args.size() == 3) {
        ++result->sets;
        const std::string& key = command.args[1];
        const std::string& value = command.args[2];
        Result<Gaddr> addr =
            heap.Allocate(std::max<uint64_t>(value.size(), 1));
        if (!addr.ok()) {
          pending_out += "-ERR oom\r\n";
          continue;
        }
        // Store the value bytes: a LibC memcpy into the app heap.
        image.CallLeaf(app_to_libc, [&] {
          if (!value.empty()) {
            space.Write(addr.value(), value.data(), value.size());
          }
        });
        auto old = store.find(key);
        if (old != store.end()) {
          (void)heap.Free(old->second.addr);
          old->second = RedisValue{addr.value(), value.size()};
        } else {
          store.emplace(key, RedisValue{addr.value(), value.size()});
        }
        pending_out += "+OK\r\n";
      } else if (op == "GET" && command.args.size() == 2) {
        ++result->gets;
        auto it = store.find(command.args[1]);
        if (it == store.end()) {
          pending_out += "$-1\r\n";
        } else {
          ++result->hits;
          std::string value(it->second.size, '\0');
          image.CallLeaf(app_to_libc, [&] {
            if (!value.empty()) {
              space.Read(it->second.addr, value.data(), value.size());
            }
          });
          pending_out += StrFormat("$%zu\r\n", value.size());
          pending_out += value;
          pending_out += "\r\n";
        }
      } else if (op == "DEL" && command.args.size() == 2) {
        auto it = store.find(command.args[1]);
        if (it != store.end()) {
          (void)heap.Free(it->second.addr);
          store.erase(it);
          pending_out += ":1\r\n";
        } else {
          pending_out += ":0\r\n";
        }
      } else if (op == "PING") {
        pending_out += "+PONG\r\n";
      } else {
        ++result->protocol_errors;
        pending_out += "-ERR unknown command\r\n";
      }
    }

    // Flush replies: stage into the shared response buffer (a LibC
    // memcpy) and hand it to the stack.
    uint64_t sent = 0;
    while (sent < pending_out.size()) {
      const uint64_t chunk = std::min<uint64_t>(
          pending_out.size() - sent, options.resp_buffer_bytes);
      image.CallLeaf(app_to_libc, [&] {
        space.Write(resp_buf, pending_out.data() + sent, chunk);
      });
      if (!net_call([&] {
            Result<uint64_t> r = tcp.Send(conn, resp_buf, chunk);
            if (!r.ok()) {
              FLEXOS_WARN("redis send failed: %s",
                          r.status().ToString().c_str());
              result->ok = false;
              closed = true;
            }
          })) {
        closed = true;
      }
      if (closed) {
        break;
      }
      sent += chunk;
    }
  }

  // Best-effort close; a quarantined net compartment is not worth waiting
  // out just to drop the connection.
  (void)image.TryCall(app_to_net, [&] { (void)tcp.Close(conn); });

  // Last handler out frees the store.
  --state->handlers_live;
  if (state->handlers_live == 0 && state->all_accepted) {
    for (auto& [key, value] : store) {
      (void)heap.Free(value.addr);
    }
    store.clear();
  }
}

}  // namespace

void SpawnRedisServer(Testbed& bed, const RedisServerOptions& options,
                      RedisServerResult* result) {
  auto state = std::make_shared<RedisSharedState>();
  result->ok = true;

  // Under supervision the app compartment can be heap-reset and restarted
  // behind our back; the store's guest pointers died with the heap, so the
  // init hook drops the map wholesale (no per-value Free — the crashed
  // compartment's metadata cannot be trusted).
  if (bed.supervisor() != nullptr) {
    const int app_comp = bed.image().CompartmentOf(kLibApp);
    bed.supervisor()->RegisterInitHook(app_comp, "redis-store-clear",
                                       [state] {
                                         state->store.clear();
                                         return Status::Ok();
                                       });
  }

  bed.SpawnApp("redis-accept", [&bed, options, result, state] {
    Image& image = bed.image();
    TcpEngine& tcp = bed.stack().tcp();
    const RouteHandle app_to_net = image.Resolve(kLibApp, kLibNet);
    int listener = -1;
    bool net_ok = true;
    const bool listen_ok =
        NetCallWithRetry(bed, app_to_net, &result->unavailable_errors, [&] {
          Result<int> r = tcp.Listen(options.port, options.max_conns + 4);
          if (!r.ok()) {
            FLEXOS_WARN("redis listen failed: %s",
                        r.status().ToString().c_str());
            net_ok = false;
            return;
          }
          listener = r.value();
        });
    if (!listen_ok || !net_ok) {
      result->ok = false;
      return;  // Cannot serve at all without a listener.
    }
    for (int i = 0; i < options.max_conns; ++i) {
      int conn = -1;
      const bool accept_ok = NetCallWithRetry(
          bed, app_to_net, &result->unavailable_errors, [&] {
            Result<int> r = tcp.Accept(listener);
            if (!r.ok()) {
              FLEXOS_WARN("redis accept failed: %s",
                          r.status().ToString().c_str());
              net_ok = false;
              return;
            }
            conn = r.value();
          });
      if (!accept_ok || !net_ok) {
        result->ok = false;
        break;
      }
      ++state->handlers_live;
      Result<Thread*> handler = bed.scheduler().Spawn(
          StrFormat("redis-conn-%d", i), [&bed, options, conn, state,
                                          result] {
            // TryCall so a trap inside the handler is contained by the
            // supervisor (when installed) instead of killing the image;
            // the connection dies, the server survives.
            const Status status =
                bed.image().TryCall(kLibPlatform, kLibApp, [&] {
                  HandleRedisConnection(bed, options, conn, state, result);
                });
            if (!status.ok()) {
              ++result->contained_faults;
              --state->handlers_live;
              (void)bed.image().TryCall(kLibPlatform, kLibNet, [&] {
                (void)bed.stack().tcp().Close(conn);
              });
            }
          });
      if (!handler.ok()) {
        FLEXOS_WARN("handler spawn failed: %s",
                    handler.status().ToString().c_str());
        --state->handlers_live;
        result->ok = false;
        break;
      }
    }
    state->all_accepted = true;
    (void)image.TryCall(app_to_net, [&] { (void)tcp.Close(listener); });
  });
}

}  // namespace flexos
