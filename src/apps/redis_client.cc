#include "apps/redis_client.h"

#include <algorithm>
#include <cstring>

#include "support/strings.h"

namespace flexos {

std::string RedisRemoteClient::NextRequest() {
  if (value_fill_.size() != workload_.payload_bytes) {
    value_fill_.assign(workload_.payload_bytes, 'v');
  }
  const bool warmup = issued_ < workload_.warmup_sets;
  const uint64_t key_index =
      (warmup ? issued_ : issued_ - workload_.warmup_sets) %
      workload_.key_space;
  const std::string key =
      StrFormat("%s:%llu", workload_.key_prefix.c_str(),
                static_cast<unsigned long long>(key_index));
  ++issued_;
  if (warmup || !workload_.measure_gets) {
    return EncodeRespCommand({"SET", key, value_fill_});
  }
  return EncodeRespCommand({"GET", key});
}

size_t RedisRemoteClient::ProduceData(uint8_t* out, size_t max) {
  if (tx_pending_.size() == tx_offset_) {
    tx_pending_.clear();
    tx_offset_ = 0;
    // Keep up to `pipeline` requests outstanding (redis-benchmark -P).
    const uint64_t limit = workload_.pipeline == 0 ? 1 : workload_.pipeline;
    while (issued_ < total_ops() && issued_ - completed_ < limit) {
      if (issued_ == workload_.warmup_sets && measure_start_cycles_ == 0) {
        measure_start_cycles_ = machine_.clock().cycles();
      }
      tx_pending_ += NextRequest();
    }
    if (tx_pending_.empty()) {
      return 0;
    }
  }
  const size_t n = std::min(max, tx_pending_.size() - tx_offset_);
  std::memcpy(out, tx_pending_.data() + tx_offset_, n);
  tx_offset_ += n;
  return n;
}

bool RedisRemoteClient::Finished() const {
  return completed_ >= total_ops();
}

void RedisRemoteClient::OnReceive(const uint8_t* data, size_t len) {
  rx_.append(reinterpret_cast<const char*>(data), len);
  for (;;) {
    const int64_t consumed = RespReplyLength(rx_);
    if (consumed == 0) {
      break;
    }
    if (consumed < 0) {
      ++errors_;
      rx_.clear();
      break;
    }
    if (rx_[0] == '-') {
      ++errors_;
    }
    rx_.erase(0, static_cast<size_t>(consumed));
    ++completed_;
    if (completed_ == total_ops()) {
      measure_end_cycles_ = machine_.clock().cycles();
    }
  }
}

double RedisRemoteClient::MeasuredOpsPerSec() const {
  if (measure_end_cycles_ <= measure_start_cycles_ ||
      measured_completed() == 0) {
    return 0;
  }
  const double seconds =
      static_cast<double>(measure_end_cycles_ - measure_start_cycles_) /
      static_cast<double>(machine_.clock().freq_hz());
  return static_cast<double>(measured_completed()) / seconds;
}

}  // namespace flexos
