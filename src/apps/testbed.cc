#include "apps/testbed.h"

#include <algorithm>

#include "support/log.h"

namespace flexos {

std::vector<std::string> DefaultLibs() {
  return {std::string(kLibApp),  std::string(kLibNet),
          std::string(kLibSched), std::string(kLibLibc),
          std::string(kLibAlloc), std::string(kLibFs)};
}

Testbed::Testbed(const TestbedConfig& config)
    : config_(config), machine_(Clock::kDefaultFreqHz, config.costs) {
  // Before the image build: boundary recorders resolve their per-vCPU
  // counters against this count.
  machine_.SetVCpuCount(config.vcpus);
  machine_.SetRaceDetection(config.race_detect);
  ImageBuilder builder(machine_);
  Result<std::unique_ptr<Image>> image = builder.Build(config.image);
  FLEXOS_CHECK(image.ok(), "image build failed: %s",
               image.status().ToString().c_str());
  image_ = std::move(image).value();
  platform_to_app_ = image_->Resolve(kLibPlatform, kLibApp);

  if (config.supervise) {
    supervisor_ = std::make_unique<fault::CompartmentSupervisor>(
        *image_, config.restart_policy);
    image_->SetFaultHandler(supervisor_.get());
  }
  if (!config.fault_plan.empty()) {
    machine_.injector().LoadPlan(config.fault_plan);
  }

  if (config.verified_scheduler) {
    scheduler_ = std::make_unique<VerifiedScheduler>(machine_);
  } else {
    scheduler_ = std::make_unique<CoopScheduler>(machine_);
  }

  nic_ = std::make_unique<Nic>(machine_, "eth0", config.server_mac,
                               config.server_ip);
  link_ = std::make_unique<Link>(machine_, config.link);
  nic_->AttachTo(*link_, /*is_side_a=*/true);

  stack_ = std::make_unique<NetStack>(
      NetStack::Deps{.machine = machine_,
                     .space = image_->SpaceOf(kLibNet),
                     .allocator = image_->AllocatorOf(kLibNet),
                     .scheduler = *scheduler_,
                     .nic = *nic_,
                     .router = *image_},
      config.tcp);

  scheduler_->SetIdleHandler([this] { return OnIdle(); });

  if (config.profile) {
    machine_.attrib().SetEnabled(true, machine_.clock().cycles());
  }

  // flexwatch (DESIGN.md §14): windowing turns on when asked for explicitly
  // (--watch) or implied by the config (window_cycles / slo / adapt
  // directives — the adaptive engine decides at window closes).
  if (config.watch || config.image.window_cycles != 0 ||
      !config.image.slos.empty() || config.image.adapt.enabled) {
    uint64_t window = config.window_cycles != 0 ? config.window_cycles
                                                : config.image.window_cycles;
    if (window == 0) {
      window = machine_.clock().NanosToCycles(obs::kDefaultWindowNs);
    }
    machine_.timeseries().Enable(window);
    for (const obs::SloSpec& spec : config.image.slos) {
      machine_.timeseries().AddWatchdog(spec);
    }
    if (supervisor_ != nullptr) {
      // SLO violations notify (never quarantine) the fault supervisor.
      machine_.timeseries().SetViolationHook(
          [this](const obs::SloViolation& violation) {
            supervisor_->OnSloViolation(violation.slo_name);
          });
    }
  }

  // flexadapt (DESIGN.md §16): the policy engine feeds on window closes and
  // (when supervised) on contained traps. Constructed only when the config
  // opts in, so disabled runs never create adapt.* metrics and every route
  // epoch stays at its boot value.
  if (config.image.adapt.enabled) {
    adapt_ = std::make_unique<adapt::AdaptiveIsolationEngine>(
        *image_, config.image.adapt);
    machine_.timeseries().SetWindowHook(
        [this](const obs::WindowSnapshot& snapshot) {
          adapt_->OnWindow(snapshot);
        });
    if (supervisor_ != nullptr) {
      supervisor_->SetTrapObserver([this](int from_comp, int to_comp) {
        adapt_->OnContainedTrap(from_comp, to_comp);
      });
    }
  }
}

Gaddr Testbed::AllocShared(uint64_t size) {
  Result<Gaddr> addr = image_->shared_allocator().Allocate(size);
  FLEXOS_CHECK(addr.ok(), "shared allocation failed: %s",
               addr.status().ToString().c_str());
  return addr.value();
}

Thread* Testbed::SpawnApp(const std::string& name,
                          std::function<void()> body) {
  return SpawnApp(name, std::move(body), config_.app_affinity);
}

Thread* Testbed::SpawnApp(const std::string& name, std::function<void()> body,
                          int affinity) {
  Result<Thread*> thread = scheduler_->Spawn(
      name,
      [this, body] {
        // Enter the app compartment for the thread's lifetime. TryCall so a
        // trap inside the app lands in the supervisor (when installed)
        // instead of killing the whole image; unsupervised images behave as
        // before.
        const Status status = image_->TryCall(platform_to_app_, body);
        if (!status.ok()) {
          FLEXOS_WARN("app thread ended by fault containment: %s",
                      status.ToString().c_str());
        }
      },
      affinity);
  FLEXOS_CHECK(thread.ok(), "spawn failed: %s",
               thread.status().ToString().c_str());
  return thread.value();
}

Status Testbed::Run() {
  Status status = scheduler_->Run();
  const std::string crossings = image_->DescribeCrossings();
  if (!crossings.empty()) {
    FLEXOS_DEBUG("gate traffic:\n%s", crossings.c_str());
  }
  return status;
}

bool Testbed::OnIdle() {
  bool progress = link_->DeliverDue() > 0;
  for (RemoteTcpPeer* peer : peers_) {
    if (peer->OnTick()) {
      progress = true;
    }
  }
  if (stack_->Poll()) {
    progress = true;
  }
  if (progress) {
    return true;
  }
  // Nothing due now: jump virtual time to the next scheduled event.
  const uint64_t now = machine_.clock().cycles();
  auto next_event = [this, now](bool future_only) {
    std::optional<uint64_t> next;
    auto consider = [&next, now,
                     future_only](std::optional<uint64_t> candidate) {
      if (candidate.has_value() && (!future_only || *candidate > now) &&
          (!next.has_value() || *candidate < *next)) {
        next = candidate;
      }
    };
    consider(link_->NextArrivalCycles());
    consider(stack_->NextEventCycles());
    for (RemoteTcpPeer* peer : peers_) {
      consider(peer->NextEventCycles());
    }
    if (supervisor_ != nullptr) {
      const uint64_t restart = supervisor_->NextRestartCycles();
      // Only future deadlines: an expired quarantine restarts lazily at the
      // next Admit, so jumping to a past deadline would spin here forever.
      if (restart != fault::CompartmentSupervisor::kNoRestartPending &&
          restart > now) {
        consider(restart);
      }
    }
    return next;
  };
  auto deliver_round = [this] {
    bool advanced = link_->DeliverDue() > 0;
    for (RemoteTcpPeer* peer : peers_) {
      if (peer->OnTick()) {
        advanced = true;
      }
    }
    if (stack_->Poll()) {
      advanced = true;
    }
    return advanced;
  };

  std::optional<uint64_t> next = next_event(/*future_only=*/false);
  if (next.has_value() && *next <= now) {
    // Already due, yet the progress phase above saw nothing: either the
    // event was scheduled mid-round after its processor already ran (a
    // frame Poll transmitted with an arrival the earlier DeliverDue would
    // have drained — one more round picks it up), or it is unprocessable
    // right now (a TCP timer inside a quarantined net compartment whose
    // Poll is being refused). In the latter case jump to the next future
    // event — typically the supervisor's restart deadline — instead of
    // spinning with the clock pinned before it.
    if (deliver_round()) {
      return true;
    }
    next = next_event(/*future_only=*/true);
  }
  if (!next.has_value()) {
    return false;  // Genuinely idle (or deadlocked).
  }
  // Idle skip: the whole machine sleeps until the next device event. Every
  // vCPU clock jumps together — events merge back into the run queues in
  // deterministic order (the scheduler picks lowest-clock-first with
  // vCPU-id tiebreak), so the same seed replays identically at any vCPU
  // count. At one vCPU this is exactly the old single-clock AdvanceTo.
  machine_.AdvanceAllClocksTo(*next);
  deliver_round();
  return true;
}

}  // namespace flexos
