// The iperf-style TCP sink server of the paper's §4 experiments: accept one
// connection, read into a buffer of configurable size until EOF, count
// bytes. "At the server side, we vary the size of the buffer passed to
// recv" — that buffer size is Fig. 3's x-axis.
#ifndef FLEXOS_APPS_IPERF_SERVER_H_
#define FLEXOS_APPS_IPERF_SERVER_H_

#include "apps/testbed.h"

namespace flexos {

struct IperfServerResult {
  uint64_t bytes_received = 0;
  uint64_t recv_calls = 0;
  uint64_t done_cycles = 0;  // Clock when the sink saw EOF.
  bool ok = false;
};

struct IperfServerOptions {
  Port port = 5001;
  uint64_t recv_buffer_bytes = 16 * 1024;
  // Per-recv application work: iperf maintains counters and (optionally)
  // inspects the payload; modeled as a light touch of the buffer.
  uint64_t app_touch_divisor = 4;  // Touches size/divisor bytes per recv.
};

// Spawns the server thread on `bed`. The result struct must outlive the
// run; it is filled in by the thread.
void SpawnIperfServer(Testbed& bed, const IperfServerOptions& options,
                      IperfServerResult* result);

}  // namespace flexos

#endif  // FLEXOS_APPS_IPERF_SERVER_H_
