#include "apps/iperf_client.h"

#include <algorithm>
#include <cstring>

namespace flexos {

size_t IperfRemoteClient::ProduceData(uint8_t* out, size_t max) {
  const size_t n = static_cast<size_t>(
      std::min<uint64_t>(max, remaining_));
  // Rotating fill so payload corruption would be visible in tests.
  std::memset(out, 'a' + (fill_++ % 26), n);
  remaining_ -= n;
  return n;
}

void IperfRemoteClient::OnReceive(const uint8_t* data, size_t len) {
  // iperf servers don't talk back during the transfer.
  (void)data;
  (void)len;
}

}  // namespace flexos
