// A minimal HTTP/1.0 static-file server over the TCP engine, serving from
// a RamFs — the third in-tree application (after iperf and Redis-lite),
// exercising the fs micro-library across compartment boundaries.
// Supports GET with keep-alive; everything else earns a 400/404/405.
#ifndef FLEXOS_APPS_HTTP_SERVER_H_
#define FLEXOS_APPS_HTTP_SERVER_H_

#include <string>

#include "apps/testbed.h"
#include "fs/ramfs.h"

namespace flexos {

struct HttpServerOptions {
  Port port = 8080;
  uint64_t buffer_bytes = 8192;
};

struct HttpServerResult {
  uint64_t requests = 0;
  uint64_t responses_200 = 0;
  uint64_t responses_404 = 0;
  uint64_t responses_400 = 0;
  bool ok = false;
};

// Serves one connection until the client closes. `fs` holds the documents.
void SpawnHttpServer(Testbed& bed, RamFs& fs,
                     const HttpServerOptions& options,
                     HttpServerResult* result);

// --- Request/response helpers (exposed for tests and clients) ------------

// One parsed request line + headers (bodies unsupported: GET only).
struct HttpRequest {
  std::string method;
  std::string path;
  bool keep_alive = true;
};

// Parses one complete request ("\r\n\r\n"-terminated) at the front of
// `data`; returns bytes consumed, 0 if incomplete, < 0 on malformed input.
int64_t ParseHttpRequest(std::string_view data, HttpRequest* out);

// Builds a full response with Content-Length.
std::string BuildHttpResponse(int status, std::string_view reason,
                              std::string_view body);

}  // namespace flexos

#endif  // FLEXOS_APPS_HTTP_SERVER_H_
