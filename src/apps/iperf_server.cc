#include "apps/iperf_server.h"

#include "support/log.h"

namespace flexos {

void SpawnIperfServer(Testbed& bed, const IperfServerOptions& options,
                      IperfServerResult* result) {
  bed.SpawnApp("iperf-server", [&bed, options, result] {
    Machine& machine = bed.machine();
    Image& image = bed.image();
    TcpEngine& tcp = bed.stack().tcp();
    const RouteHandle app_to_net = image.Resolve(kLibApp, kLibNet);
    const Gaddr buffer = bed.AllocShared(options.recv_buffer_bytes);

    // Environmental failures (port taken, backlog full) end the server
    // gracefully; a remote client cannot be allowed to panic the image.
    int listener = -1;
    image.Call(app_to_net, [&] {
      Result<int> r = tcp.Listen(options.port, 8);
      if (!r.ok()) {
        FLEXOS_WARN("iperf listen failed: %s",
                    r.status().ToString().c_str());
        return;
      }
      listener = r.value();
    });
    if (listener < 0) {
      result->ok = false;
      return;
    }
    int conn = -1;
    image.Call(app_to_net, [&] {
      Result<int> r = tcp.Accept(listener);
      if (!r.ok()) {
        FLEXOS_WARN("iperf accept failed: %s",
                    r.status().ToString().c_str());
        return;
      }
      conn = r.value();
    });
    if (conn < 0) {
      image.Call(app_to_net, [&] { (void)tcp.Close(listener); });
      result->ok = false;
      return;
    }

    for (;;) {
      uint64_t received = 0;
      bool failed = false;
      image.Call(app_to_net, [&] {
        Result<uint64_t> r =
            tcp.Recv(conn, buffer, options.recv_buffer_bytes);
        if (!r.ok()) {
          FLEXOS_WARN("iperf recv failed: %s",
                      r.status().ToString().c_str());
          failed = true;
          return;
        }
        received = r.value();
      });
      if (failed || received == 0) {
        result->ok = !failed;
        break;
      }
      result->bytes_received += received;
      ++result->recv_calls;
      // Application-side bookkeeping in the app compartment: counters plus
      // a light touch of the payload.
      machine.ChargeCompute(60);
      if (options.app_touch_divisor > 0) {
        machine.ChargeMemOp(received / options.app_touch_divisor + 16);
      }
    }
    result->done_cycles = machine.clock().cycles();

    image.Call(app_to_net, [&] {
      (void)tcp.Close(conn);
      (void)tcp.Close(listener);
    });
  });
}

}  // namespace flexos
