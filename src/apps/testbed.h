// Testbed: composes a complete FlexOS system — machine, built image,
// scheduler, NIC + link, network stack, and remote peers — and wires the
// scheduler idle handler that advances virtual time across link deliveries
// and protocol timers. This is the "boot" code every example, test, and
// benchmark builds on.
#ifndef FLEXOS_APPS_TESTBED_H_
#define FLEXOS_APPS_TESTBED_H_

#include <memory>
#include <vector>

#include "adapt/adapt.h"
#include "core/image_builder.h"
#include "fault/supervisor.h"
#include "net/link.h"
#include "net/netstack.h"
#include "net/remote_tcp.h"
#include "sched/coop_scheduler.h"
#include "sched/verified_scheduler.h"

namespace flexos {

struct TestbedConfig {
  ImageConfig image;
  bool verified_scheduler = false;
  LinkConfig link;
  TcpConfig tcp;
  // Cost model for the machine (benchmarks tweak it to model e.g. the
  // paper's less-optimized Xen platform).
  CostModel costs;
  // Enables the cycle/request attributor from boot (flexstat --flame and
  // --request set this). Attribution observes the clock and never charges
  // it, so modeled results are unchanged.
  bool profile = false;
  // Server addressing (the guest side).
  MacAddr server_mac{{0x02, 0, 0, 0, 0, 0xaa}};
  Ipv4Addr server_ip = MakeIpv4(10, 0, 0, 1);
  // Installs a CompartmentSupervisor on the image so traps on isolating
  // boundaries are contained and crashed compartments restart under
  // `restart_policy` (chaos/fault-recovery experiments set this).
  bool supervise = false;
  fault::RestartPolicy restart_policy;
  // Fault-injection plan loaded into the machine's injector at boot. An
  // empty plan leaves every site disarmed (bit-identical baseline runs).
  fault::FaultPlan fault_plan;
  // Simulated vCPUs (DESIGN.md §12). 1 (the default) reproduces the
  // single-core machine bit-identically; >1 enables per-vCPU run queues,
  // clocks, and key state. Clamped to [1, kMaxVCpus].
  int vcpus = 1;
  // Default pin for SpawnApp threads: -1 (unpinned) or a vCPU id. The
  // platform (devices, netstack poll, timers) always runs on vCPU 0, so
  // SMP workloads pin their app shards to spread across cores.
  int app_affinity = -1;
  // Enables the flexrace happens-before validator (DESIGN.md §13) from
  // boot. Like `profile`, it observes the model and never charges a clock,
  // so modeled cycles are bit-identical; an unsynchronized cross-vCPU
  // shared-region pair raises a kDataRace trap.
  bool race_detect = false;
  // Enables flexwatch windowing (DESIGN.md §14) even when the image config
  // declares no window_cycles/slo directives (flexstat --watch/--timeline
  // set this). Observes, never charges: modeled cycles stay bit-identical.
  bool watch = false;
  // Overrides the window length in cycles; 0 defers to the image config's
  // window_cycles, then to 1 ms of virtual time (obs::kDefaultWindowNs).
  uint64_t window_cycles = 0;
};

// The standard five-library split used by the in-tree experiments.
std::vector<std::string> DefaultLibs();

class Testbed {
 public:
  explicit Testbed(const TestbedConfig& config);

  Machine& machine() { return machine_; }
  Image& image() { return *image_; }
  CoopScheduler& scheduler() { return *scheduler_; }
  NetStack& stack() { return *stack_; }
  Link& link() { return *link_; }
  Nic& nic() { return *nic_; }
  // Null unless config.supervise was set.
  fault::CompartmentSupervisor* supervisor() { return supervisor_.get(); }
  // Null unless the image config said "adapt on" (DESIGN.md §16).
  adapt::AdaptiveIsolationEngine* adapt_engine() { return adapt_.get(); }

  // Registers a remote peer so the idle handler drives its timers.
  void AddPeer(RemoteTcpPeer* peer) { peers_.push_back(peer); }

  // Allocates a cross-compartment buffer from the image's shared region.
  Gaddr AllocShared(uint64_t size);

  // Spawns a guest thread whose body runs in the app compartment, pinned
  // to config.app_affinity (unpinned by default).
  Thread* SpawnApp(const std::string& name, std::function<void()> body);

  // Same, with an explicit vCPU pin (-1 = unpinned).
  Thread* SpawnApp(const std::string& name, std::function<void()> body,
                   int affinity);

  // Runs the scheduler to completion.
  Status Run();

  // Per-boundary gate traffic (crossings, batched bodies, marshalled
  // bytes), one line per (from, to) compartment pair. Also logged at
  // debug level when Run finishes.
  std::string DescribeCrossings() const { return image_->DescribeCrossings(); }

 private:
  bool OnIdle();

  TestbedConfig config_;
  Machine machine_;
  std::unique_ptr<Image> image_;
  std::unique_ptr<fault::CompartmentSupervisor> supervisor_;
  std::unique_ptr<adapt::AdaptiveIsolationEngine> adapt_;
  RouteHandle platform_to_app_;  // Resolved once; SpawnApp's entry route.
  std::unique_ptr<CoopScheduler> scheduler_;
  std::unique_ptr<Nic> nic_;
  std::unique_ptr<Link> link_;
  std::unique_ptr<NetStack> stack_;
  std::vector<RemoteTcpPeer*> peers_;
};

}  // namespace flexos

#endif  // FLEXOS_APPS_TESTBED_H_
