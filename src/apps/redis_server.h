// Redis-lite: a RESP (REdis Serialization Protocol) key-value server
// supporting SET/GET/DEL/PING — the paper's second workload. Values live in
// guest memory allocated from the app compartment's allocator, so every
// request exercises malloc (the Fig. 4 allocator experiments) and the
// app -> net -> libc -> sched gate chains (the Fig. 5 isolation
// experiments).
#ifndef FLEXOS_APPS_REDIS_SERVER_H_
#define FLEXOS_APPS_REDIS_SERVER_H_

#include <optional>
#include <string>
#include <unordered_map>
#include <vector>

#include "apps/testbed.h"

namespace flexos {

struct RedisServerOptions {
  Port port = 6379;
  uint64_t recv_buffer_bytes = 4096;
  uint64_t resp_buffer_bytes = 8192;
  // Connections to accept before the listener closes; one handler thread
  // per connection (redis-benchmark drives many concurrent connections).
  int max_conns = 1;
};

struct RedisServerResult {
  uint64_t commands = 0;
  uint64_t sets = 0;
  uint64_t gets = 0;
  uint64_t hits = 0;
  uint64_t protocol_errors = 0;
  // Degraded-mode accounting (supervised images, fault/): gate crossings
  // refused with kUnavailable while a compartment was quarantined, and
  // handler bodies ended by trap containment.
  uint64_t unavailable_errors = 0;
  uint64_t contained_faults = 0;
  bool ok = false;
};

void SpawnRedisServer(Testbed& bed, const RedisServerOptions& options,
                      RedisServerResult* result);

// --- RESP helpers (exposed for tests and the remote client) --------------

// One parsed RESP command: array of bulk strings.
struct RespCommand {
  std::vector<std::string> args;
};

// Tries to parse one complete command at the front of `data`. Returns the
// consumed byte count (> 0) and fills `out`; returns 0 if more bytes are
// needed; returns a negative value on protocol error.
int64_t ParseRespCommand(std::string_view data, RespCommand* out);

// Builds the RESP encoding of a command (client side).
std::string EncodeRespCommand(const std::vector<std::string>& args);

// Scans for one complete RESP *reply* (simple string, error, or bulk) at
// the front of `data`; returns bytes consumed, 0 if incomplete, < 0 on
// error.
int64_t RespReplyLength(std::string_view data);

}  // namespace flexos

#endif  // FLEXOS_APPS_REDIS_SERVER_H_
