// The remote iperf sender: pushes a fixed byte volume to the server as
// fast as the window allows, then closes. Runs on the "client machine"
// (host-side, uncharged; see net/remote_tcp.h).
#ifndef FLEXOS_APPS_IPERF_CLIENT_H_
#define FLEXOS_APPS_IPERF_CLIENT_H_

#include <memory>

#include "net/remote_tcp.h"

namespace flexos {

class IperfRemoteClient final : public RemoteApp {
 public:
  explicit IperfRemoteClient(uint64_t total_bytes)
      : remaining_(total_bytes) {}

  size_t ProduceData(uint8_t* out, size_t max) override;
  bool Finished() const override { return remaining_ == 0; }
  void OnReceive(const uint8_t* data, size_t len) override;
  void OnClosed() override { closed_ = true; }

  uint64_t remaining() const { return remaining_; }
  bool closed() const { return closed_; }

 private:
  uint64_t remaining_;
  uint8_t fill_ = 0;
  bool closed_ = false;
};

}  // namespace flexos

#endif  // FLEXOS_APPS_IPERF_CLIENT_H_
