// The remote redis-benchmark-style client: a closed-loop request generator
// running on the client machine (host-side, uncharged). Supports a warmup
// phase (preloading keys for GET workloads) and a measured phase whose
// start/end cycle marks the benchmarks read.
#ifndef FLEXOS_APPS_REDIS_CLIENT_H_
#define FLEXOS_APPS_REDIS_CLIENT_H_

#include <string>

#include "apps/redis_server.h"
#include "net/remote_tcp.h"

namespace flexos {

struct RedisWorkload {
  bool measure_gets = false;  // false: SET workload, true: GET workload.
  uint64_t warmup_sets = 0;   // Keys preloaded before the measured phase.
  uint64_t measured_ops = 100;
  uint64_t key_space = 64;
  uint64_t payload_bytes = 5;
  // Outstanding requests kept in flight (redis-benchmark -P).
  uint64_t pipeline = 1;
  // Key prefix, so concurrent clients use disjoint keyspaces.
  std::string key_prefix = "key";
};

class RedisRemoteClient final : public RemoteApp {
 public:
  RedisRemoteClient(Machine& machine, RedisWorkload workload)
      : machine_(machine), workload_(workload) {}

  size_t ProduceData(uint8_t* out, size_t max) override;
  bool Finished() const override;
  void OnReceive(const uint8_t* data, size_t len) override;
  void OnClosed() override { closed_ = true; }

  uint64_t completed_ops() const { return completed_; }
  uint64_t measured_completed() const {
    return completed_ > workload_.warmup_sets
               ? completed_ - workload_.warmup_sets
               : 0;
  }
  uint64_t measure_start_cycles() const { return measure_start_cycles_; }
  uint64_t measure_end_cycles() const { return measure_end_cycles_; }
  uint64_t errors() const { return errors_; }
  bool closed() const { return closed_; }

  // Measured throughput in requests per virtual second.
  double MeasuredOpsPerSec() const;

 private:
  uint64_t total_ops() const {
    return workload_.warmup_sets + workload_.measured_ops;
  }
  std::string NextRequest();

  Machine& machine_;
  RedisWorkload workload_;

  uint64_t issued_ = 0;
  uint64_t completed_ = 0;
  uint64_t errors_ = 0;
  std::string tx_pending_;
  size_t tx_offset_ = 0;
  std::string rx_;
  std::string value_fill_;
  uint64_t measure_start_cycles_ = 0;
  uint64_t measure_end_cycles_ = 0;
  bool closed_ = false;
};

}  // namespace flexos

#endif  // FLEXOS_APPS_REDIS_CLIENT_H_
