#include "apps/http_server.h"

#include "support/log.h"
#include "support/strings.h"

namespace flexos {

int64_t ParseHttpRequest(std::string_view data, HttpRequest* out) {
  const size_t end = data.find("\r\n\r\n");
  if (end == std::string_view::npos) {
    return data.size() > 16 * 1024 ? -1 : 0;  // Header flood guard.
  }
  const std::string_view head = data.substr(0, end);
  const auto lines = SplitString(head, '\n');
  if (lines.empty()) {
    return -1;
  }
  const auto parts = SplitAndTrim(TrimWhitespace(lines[0]), ' ');
  if (parts.size() != 3 || !StartsWith(parts[2], "HTTP/")) {
    return -1;
  }
  out->method = std::string(parts[0]);
  out->path = std::string(parts[1]);
  out->keep_alive = true;
  for (size_t i = 1; i < lines.size(); ++i) {
    std::string_view line = TrimWhitespace(lines[i]);
    // Case-sensitive match suffices for our own clients.
    if (line == "Connection: close") {
      out->keep_alive = false;
    }
  }
  return static_cast<int64_t>(end + 4);
}

std::string BuildHttpResponse(int status, std::string_view reason,
                              std::string_view body) {
  std::string response = StrFormat(
      "HTTP/1.0 %d %s\r\nContent-Length: %zu\r\n"
      "Content-Type: application/octet-stream\r\n\r\n",
      status, std::string(reason).c_str(), body.size());
  response += body;
  return response;
}

void SpawnHttpServer(Testbed& bed, RamFs& fs,
                     const HttpServerOptions& options,
                     HttpServerResult* result) {
  bed.SpawnApp("http-server", [&bed, &fs, options, result] {
    Machine& machine = bed.machine();
    Image& image = bed.image();
    AddressSpace& space = image.SpaceOf(kLibApp);
    TcpEngine& tcp = bed.stack().tcp();
    const RouteHandle app_to_net = image.Resolve(kLibApp, kLibNet);
    const RouteHandle app_to_libc = image.Resolve(kLibApp, kLibLibc);
    const RouteHandle app_to_fs = image.Resolve(kLibApp, kLibFs);
    const Gaddr buffer = bed.AllocShared(options.buffer_bytes);
    const Gaddr file_buf = bed.AllocShared(options.buffer_bytes);

    // Listen/accept failures (port collision, backlog exhaustion under a
    // connection flood) are environmental, not programming errors: fail the
    // server gracefully instead of panicking the image.
    int listener = -1;
    image.Call(app_to_net, [&] {
      Result<int> r = tcp.Listen(options.port, 4);
      if (!r.ok()) {
        FLEXOS_WARN("http listen failed: %s", r.status().ToString().c_str());
        return;
      }
      listener = r.value();
    });
    if (listener < 0) {
      result->ok = false;
      return;
    }
    int conn = -1;
    image.Call(app_to_net, [&] {
      Result<int> r = tcp.Accept(listener);
      if (!r.ok()) {
        FLEXOS_WARN("http accept failed: %s", r.status().ToString().c_str());
        return;
      }
      conn = r.value();
    });
    if (conn < 0) {
      image.Call(app_to_net, [&] { (void)tcp.Close(listener); });
      result->ok = false;
      return;
    }

    result->ok = true;
    std::string acc;
    std::vector<uint8_t> mirror(options.buffer_bytes);
    bool closed = false;

    auto send_host_bytes = [&](const std::string& bytes) {
      uint64_t sent = 0;
      while (sent < bytes.size() && !closed) {
        const uint64_t chunk =
            std::min<uint64_t>(bytes.size() - sent, options.buffer_bytes);
        image.CallLeaf(app_to_libc, [&] {
          space.Write(buffer, bytes.data() + sent, chunk);
        });
        image.Call(app_to_net, [&] {
          if (!tcp.Send(conn, buffer, chunk).ok()) {
            result->ok = false;
            closed = true;
          }
        });
        sent += chunk;
      }
    };

    while (!closed) {
      uint64_t received = 0;
      image.Call(app_to_net, [&] {
        Result<uint64_t> r = tcp.Recv(conn, buffer, options.buffer_bytes);
        if (!r.ok()) {
          result->ok = false;
          closed = true;
          return;
        }
        received = r.value();
      });
      if (closed || received == 0) {
        break;
      }
      machine.ChargeCompute(received);  // Header parsing.
      machine.ChargeMemOp(received);
      space.ReadUnchecked(buffer, mirror.data(), received);
      acc.append(reinterpret_cast<char*>(mirror.data()), received);

      for (;;) {
        HttpRequest request;
        const int64_t consumed = ParseHttpRequest(acc, &request);
        if (consumed == 0) {
          break;
        }
        if (consumed < 0) {
          ++result->responses_400;
          send_host_bytes(BuildHttpResponse(400, "Bad Request", ""));
          closed = true;
          break;
        }
        acc.erase(0, static_cast<size_t>(consumed));
        ++result->requests;

        if (request.method != "GET") {
          ++result->responses_400;
          send_host_bytes(
              BuildHttpResponse(405, "Method Not Allowed", ""));
          continue;
        }
        // Strip the leading '/' to get the RamFs path.
        const std::string path =
            request.path.empty() || request.path[0] != '/'
                ? request.path
                : request.path.substr(1);

        uint64_t size = 0;
        bool found = false;
        image.Call(app_to_fs, [&] {
          Result<uint64_t> r = fs.FileSize(path);
          if (r.ok()) {
            found = true;
            size = r.value();
          }
        });
        if (!found) {
          ++result->responses_404;
          send_host_bytes(BuildHttpResponse(404, "Not Found", ""));
        } else {
          ++result->responses_200;
          send_host_bytes(StrFormat(
              "HTTP/1.0 200 OK\r\nContent-Length: %llu\r\n"
              "Content-Type: application/octet-stream\r\n\r\n",
              static_cast<unsigned long long>(size)));
          // Stream the body straight from the fs through the shared buffer.
          uint64_t offset = 0;
          while (offset < size && !closed) {
            uint64_t got = 0;
            image.Call(app_to_fs, [&] {
              got = fs.ReadFile(path, offset, file_buf,
                                options.buffer_bytes)
                        .value_or(0);
            });
            if (got == 0) {
              break;
            }
            image.Call(app_to_net, [&] {
              if (!tcp.Send(conn, file_buf, got).ok()) {
                result->ok = false;
                closed = true;
              }
            });
            offset += got;
          }
        }
        if (!request.keep_alive) {
          closed = true;
          break;
        }
      }
    }
    image.Call(app_to_net, [&] {
      (void)tcp.Close(conn);
      (void)tcp.Close(listener);
    });
  });
}

}  // namespace flexos
