#include <gtest/gtest.h>

#include "core/sh_transform.h"

namespace flexos {
namespace {

TEST(ShTransform, CfiNarrowsCallStar) {
  // Paper §2: "libraries that previously declared Call(*) are transformed
  // into Call(func. list)".
  const LibraryMeta unsafe = UnsafeCLibMeta("c");
  ShAnalysis analysis;
  analysis.cfi_call_targets = {"alloc::malloc", "libc::memcpy"};
  const LibraryMeta hardened =
      ApplyShTransform(unsafe, ShTechnique::kCfi, analysis);
  EXPECT_FALSE(hardened.behavior.calls_any);
  EXPECT_EQ(hardened.behavior.calls.count("alloc::malloc"), 1u);
  EXPECT_EQ(hardened.behavior.calls.count("libc::memcpy"), 1u);
  // Memory behavior untouched by CFI.
  EXPECT_TRUE(hardened.behavior.writes_all);
}

TEST(ShTransform, DfiNarrowsWriteStar) {
  // Paper §2: "Writes(*) will be transformed to Writes(Own)".
  const LibraryMeta unsafe = UnsafeCLibMeta("c");
  ShAnalysis analysis;
  analysis.dfi_writes_shared = false;
  const LibraryMeta hardened =
      ApplyShTransform(unsafe, ShTechnique::kDfi, analysis);
  EXPECT_FALSE(hardened.behavior.writes_all);
  EXPECT_TRUE(hardened.behavior.writes_own);
  EXPECT_FALSE(hardened.behavior.writes_shared);
}

TEST(ShTransform, AsanAlsoBoundsReads) {
  const LibraryMeta unsafe = UnsafeCLibMeta("c");
  const LibraryMeta hardened =
      ApplyShTransform(unsafe, ShTechnique::kAsan, ShAnalysis{});
  EXPECT_FALSE(hardened.behavior.reads_all);
  EXPECT_FALSE(hardened.behavior.writes_all);
}

TEST(ShTransform, StackProtectorLeavesBehaviorAlone) {
  const LibraryMeta unsafe = UnsafeCLibMeta("c");
  const LibraryMeta hardened =
      ApplyShTransform(unsafe, ShTechnique::kStackProtector, ShAnalysis{});
  EXPECT_TRUE(hardened.behavior.writes_all);
  EXPECT_TRUE(hardened.behavior.calls_any);
}

TEST(ShTransform, VariantEnumerationFollowsPaperPolicy) {
  // Safe library: one variant. Unsafe library: original + hardened.
  std::vector<LibraryMeta> libs = {SchedulerMeta(), UnsafeCLibMeta("c")};
  const auto variants = EnumerateShVariants(libs, ShAnalysis{});
  ASSERT_EQ(variants.size(), 2u);
  EXPECT_EQ(variants[0].size(), 1u);
  ASSERT_EQ(variants[1].size(), 2u);
  EXPECT_FALSE(variants[1][0].hardened());
  EXPECT_TRUE(variants[1][1].hardened());
  EXPECT_EQ(variants[1][1].applied.count(ShTechnique::kAsan), 1u);
  EXPECT_EQ(variants[1][1].applied.count(ShTechnique::kCfi), 1u);
}

TEST(ShTransform, PaperWorkedExampleSchedulerPlusUnsafeC) {
  // Paper §2: "When put together with the scheduler in the same image, the
  // SH version will be able to share a compartment with the scheduler,
  // while the original version will require a separate compartment."
  std::vector<LibraryMeta> libs = {SchedulerMeta(), UnsafeCLibMeta("c")};
  ShAnalysis analysis;
  analysis.cfi_call_targets = {"sched::thread_add", "sched::yield"};
  const auto variants = EnumerateShVariants(libs, analysis);
  const auto deployments = EnumerateDeployments(variants, true);
  ASSERT_EQ(deployments.size(), 2u);

  for (const Deployment& deployment : deployments) {
    if (deployment.num_hardened() == 0) {
      EXPECT_EQ(deployment.num_compartments(), 2)
          << "original C lib must be separated from the scheduler";
    } else {
      EXPECT_EQ(deployment.num_compartments(), 1)
          << "SH version may share the scheduler's compartment";
    }
  }
}

TEST(ShTransform, DeploymentCountIsProductOfVariantCounts) {
  std::vector<LibraryMeta> libs = {UnsafeCLibMeta("a"), UnsafeCLibMeta("b"),
                                   SchedulerMeta()};
  const auto variants = EnumerateShVariants(libs, ShAnalysis{});
  const auto deployments = EnumerateDeployments(variants, false);
  EXPECT_EQ(deployments.size(), 4u);  // 2 * 2 * 1.
}

TEST(ShTransform, TechniqueNames) {
  EXPECT_EQ(ShTechniqueName(ShTechnique::kAsan), "ASAN");
  EXPECT_EQ(ShTechniqueName(ShTechnique::kCfi), "CFI");
  EXPECT_EQ(ShTechniqueName(ShTechnique::kSafeStack), "SafeStack");
}

}  // namespace
}  // namespace flexos
