// TCP engine behavior: handshake, data transfer, flow control, loss
// recovery, teardown — driven end to end through the Testbed with scripted
// remote peers.
#include <gtest/gtest.h>

#include <cstring>

#include "apps/testbed.h"

namespace flexos {
namespace {

// A remote app that sends a fixed blob and records everything it receives.
class ScriptedRemote final : public RemoteApp {
 public:
  explicit ScriptedRemote(std::string to_send, bool finish_after_send = true)
      : to_send_(std::move(to_send)), finish_after_send_(finish_after_send) {}

  size_t ProduceData(uint8_t* out, size_t max) override {
    const size_t n = std::min(max, to_send_.size() - sent_);
    std::memcpy(out, to_send_.data() + sent_, n);
    sent_ += n;
    return n;
  }
  bool Finished() const override {
    return finish_after_send_ ? sent_ == to_send_.size() : finished_;
  }
  void OnReceive(const uint8_t* data, size_t len) override {
    received_.append(reinterpret_cast<const char*>(data), len);
  }
  void Finish() { finished_ = true; }

  const std::string& received() const { return received_; }

 private:
  std::string to_send_;
  size_t sent_ = 0;
  bool finish_after_send_;
  bool finished_ = false;
  std::string received_;
};

struct TcpFixtureResult {
  Status run_status;
  std::string server_got;
  bool got_eof = false;
};

TcpFixtureResult RunEchoServer(TestbedConfig config, ScriptedRemote& app,
                               bool echo_back,
                               uint64_t recv_chunk = 4096) {
  Testbed bed(config);
  TcpFixtureResult out;
  bed.SpawnApp("server", [&] {
    TcpEngine& tcp = bed.stack().tcp();
    Image& image = bed.image();
    AddressSpace& space = image.SpaceOf(kLibApp);
    const Gaddr buffer = bed.AllocShared(recv_chunk);
    int listener = 0, conn = 0;
    image.Call(kLibApp, kLibNet,
               [&] { listener = tcp.Listen(5001, 4).value(); });
    image.Call(kLibApp, kLibNet,
               [&] { conn = tcp.Accept(listener).value(); });
    for (;;) {
      uint64_t n = 0;
      image.Call(kLibApp, kLibNet,
                 [&] { n = tcp.Recv(conn, buffer, recv_chunk).value(); });
      if (n == 0) {
        out.got_eof = true;
        break;
      }
      std::string chunk(n, '\0');
      space.ReadUnchecked(buffer, chunk.data(), n);
      out.server_got += chunk;
      if (echo_back) {
        image.Call(kLibApp, kLibNet,
                   [&] { ASSERT_TRUE(tcp.Send(conn, buffer, n).ok()); });
      }
    }
    image.Call(kLibApp, kLibNet, [&] { (void)tcp.Close(conn); });
  });
  RemoteTcpPeer peer(bed.machine(), bed.link(), RemoteTcpConfig{}, app);
  bed.AddPeer(&peer);
  peer.Connect();
  out.run_status = bed.Run();
  return out;
}

TestbedConfig DefaultTestbed() {
  TestbedConfig config;
  config.image = BaselineConfig(DefaultLibs());
  return config;
}

TEST(TcpEngine, HandshakeDataAndEofInOrder) {
  ScriptedRemote app("The quick brown fox jumps over the lazy dog");
  TcpFixtureResult result = RunEchoServer(DefaultTestbed(), app, false);
  EXPECT_TRUE(result.run_status.ok()) << result.run_status.ToString();
  EXPECT_EQ(result.server_got,
            "The quick brown fox jumps over the lazy dog");
  EXPECT_TRUE(result.got_eof);
}

TEST(TcpEngine, EchoRoundTrip) {
  std::string blob;
  for (int i = 0; i < 500; ++i) {
    blob += static_cast<char>('A' + i % 26);
  }
  ScriptedRemote app(blob);
  TcpFixtureResult result = RunEchoServer(DefaultTestbed(), app, true);
  EXPECT_TRUE(result.run_status.ok()) << result.run_status.ToString();
  EXPECT_EQ(result.server_got, blob);
  EXPECT_EQ(app.received(), blob);
}

TEST(TcpEngine, LargeTransferSpanningManySegments) {
  std::string blob(200 * 1024, '\0');
  for (size_t i = 0; i < blob.size(); ++i) {
    blob[i] = static_cast<char>(i * 131 % 251);
  }
  ScriptedRemote app(blob);
  TcpFixtureResult result = RunEchoServer(DefaultTestbed(), app, false);
  EXPECT_TRUE(result.run_status.ok()) << result.run_status.ToString();
  EXPECT_EQ(result.server_got.size(), blob.size());
  EXPECT_EQ(result.server_got, blob);
}

TEST(TcpEngine, RecoversFromHeavyLoss) {
  TestbedConfig config = DefaultTestbed();
  config.link.loss_probability = 0.05;
  config.link.seed = 99;
  std::string blob(32 * 1024, 'z');
  ScriptedRemote app(blob);
  TcpFixtureResult result = RunEchoServer(config, app, false);
  EXPECT_TRUE(result.run_status.ok()) << result.run_status.ToString();
  EXPECT_EQ(result.server_got.size(), blob.size());
}

TEST(TcpEngine, SmallRecvBufferStillReceivesEverything) {
  std::string blob(8 * 1024, 'q');
  ScriptedRemote app(blob);
  TcpFixtureResult result =
      RunEchoServer(DefaultTestbed(), app, false, /*recv_chunk=*/64);
  EXPECT_TRUE(result.run_status.ok()) << result.run_status.ToString();
  EXPECT_EQ(result.server_got.size(), blob.size());
}

TEST(TcpEngine, FlowControlSlowReaderDoesNotLoseData) {
  // Small socket buffers + a reader that yields a lot: the window closes
  // and reopens; every byte must still arrive exactly once.
  TestbedConfig config = DefaultTestbed();
  config.tcp.ring_bytes = 8 * 1024;
  std::string blob(64 * 1024, '\0');
  for (size_t i = 0; i < blob.size(); ++i) {
    blob[i] = static_cast<char>(i % 256);
  }
  ScriptedRemote app(blob);

  Testbed bed(config);
  std::string server_got;
  bed.SpawnApp("slow-reader", [&] {
    TcpEngine& tcp = bed.stack().tcp();
    Image& image = bed.image();
    AddressSpace& space = image.SpaceOf(kLibApp);
    const Gaddr buffer = bed.AllocShared(512);
    int listener = 0, conn = 0;
    image.Call(kLibApp, kLibNet,
               [&] { listener = tcp.Listen(5001, 4).value(); });
    image.Call(kLibApp, kLibNet,
               [&] { conn = tcp.Accept(listener).value(); });
    for (;;) {
      uint64_t n = 0;
      image.Call(kLibApp, kLibNet,
                 [&] { n = tcp.Recv(conn, buffer, 512).value(); });
      if (n == 0) {
        break;
      }
      std::string chunk(n, '\0');
      space.ReadUnchecked(buffer, chunk.data(), n);
      server_got += chunk;
      bed.scheduler().Yield();  // Dawdle: let the window fill.
    }
    image.Call(kLibApp, kLibNet, [&] { (void)tcp.Close(conn); });
  });
  RemoteTcpPeer peer(bed.machine(), bed.link(), RemoteTcpConfig{}, app);
  bed.AddPeer(&peer);
  peer.Connect();
  const Status status = bed.Run();
  EXPECT_TRUE(status.ok()) << status.ToString();
  EXPECT_EQ(server_got, blob);
}

TEST(TcpEngine, ListenRejectsDuplicatePort) {
  Testbed bed(DefaultTestbed());
  bool checked = false;
  bed.SpawnApp("dup", [&] {
    TcpEngine& tcp = bed.stack().tcp();
    bed.image().Call(kLibApp, kLibNet, [&] {
      ASSERT_TRUE(tcp.Listen(7000, 4).ok());
      EXPECT_EQ(tcp.Listen(7000, 4).code(), ErrorCode::kAlreadyExists);
      EXPECT_EQ(tcp.Listen(7001, 0).code(), ErrorCode::kInvalidArgument);
      checked = true;
    });
  });
  EXPECT_TRUE(bed.Run().ok());
  EXPECT_TRUE(checked);
}

TEST(TcpEngine, OpsOnUnknownConnectionFail) {
  Testbed bed(DefaultTestbed());
  bool checked = false;
  bed.SpawnApp("bogus", [&] {
    TcpEngine& tcp = bed.stack().tcp();
    bed.image().Call(kLibApp, kLibNet, [&] {
      EXPECT_EQ(tcp.Send(1234, 0, 1).code(), ErrorCode::kNotFound);
      EXPECT_EQ(tcp.Recv(1234, 0, 1).code(), ErrorCode::kNotFound);
      EXPECT_EQ(tcp.Close(1234).code(), ErrorCode::kNotFound);
      EXPECT_EQ(tcp.Accept(999).code(), ErrorCode::kNotFound);
      checked = true;
    });
  });
  EXPECT_TRUE(bed.Run().ok());
  EXPECT_TRUE(checked);
}

TEST(TcpEngine, StatsCountSegmentsAndBytes) {
  ScriptedRemote app(std::string(10 * 1024, 's'));
  TestbedConfig config = DefaultTestbed();
  Testbed bed(config);
  uint64_t bytes = 0;
  bed.SpawnApp("server", [&] {
    TcpEngine& tcp = bed.stack().tcp();
    Image& image = bed.image();
    const Gaddr buffer = bed.AllocShared(4096);
    int listener = 0, conn = 0;
    image.Call(kLibApp, kLibNet,
               [&] { listener = tcp.Listen(5001, 4).value(); });
    image.Call(kLibApp, kLibNet,
               [&] { conn = tcp.Accept(listener).value(); });
    for (;;) {
      uint64_t n = 0;
      image.Call(kLibApp, kLibNet,
                 [&] { n = tcp.Recv(conn, buffer, 4096).value(); });
      if (n == 0) {
        break;
      }
      bytes += n;
    }
    image.Call(kLibApp, kLibNet, [&] { (void)tcp.Close(conn); });
  });
  RemoteTcpPeer peer(bed.machine(), bed.link(), RemoteTcpConfig{}, app);
  bed.AddPeer(&peer);
  peer.Connect();
  ASSERT_TRUE(bed.Run().ok());
  const TcpStats& stats = bed.stack().tcp().stats();
  EXPECT_EQ(bytes, 10u * 1024);
  EXPECT_EQ(stats.bytes_rx, 10u * 1024);
  EXPECT_GT(stats.segments_rx, 7u);  // >= ceil(10K/1460) data segments.
  EXPECT_GT(stats.segments_tx, 0u);  // ACKs.
  EXPECT_EQ(stats.conns_accepted, 1u);
}

// --- UDP ---------------------------------------------------------------------

TEST(UdpEngine, OpenCloseAndErrors) {
  Testbed bed(DefaultTestbed());
  bool checked = false;
  bed.SpawnApp("udp", [&] {
    UdpEngine& udp = bed.stack().udp();
    bed.image().Call(kLibApp, kLibNet, [&] {
      Result<int> sock = udp.Open(5353);
      ASSERT_TRUE(sock.ok());
      EXPECT_EQ(udp.Open(5353).code(), ErrorCode::kAlreadyExists);
      EXPECT_TRUE(udp.Close(sock.value()).ok());
      EXPECT_EQ(udp.Close(sock.value()).code(), ErrorCode::kNotFound);
      checked = true;
    });
  });
  EXPECT_TRUE(bed.Run().ok());
  EXPECT_TRUE(checked);
}

TEST(UdpEngine, ReceivesInjectedDatagram) {
  Testbed bed(DefaultTestbed());
  std::string got;
  UdpDatagramInfo info{};
  bed.SpawnApp("udp-rx", [&] {
    UdpEngine& udp = bed.stack().udp();
    Image& image = bed.image();
    AddressSpace& space = image.SpaceOf(kLibApp);
    const Gaddr buffer = bed.AllocShared(256);
    int sock = 0;
    image.Call(kLibApp, kLibNet, [&] { sock = udp.Open(5353).value(); });
    image.Call(kLibApp, kLibNet, [&] {
      info = udp.RecvFrom(sock, buffer, 256).value();
    });
    got.resize(info.bytes);
    space.ReadUnchecked(buffer, got.data(), got.size());
  });
  // Inject a datagram from the "remote side" of the link.
  const std::string payload = "udp-hello";
  bed.link().SendFromB(BuildUdpFrame(
      MacAddr{{2, 0, 0, 0, 0, 0xbb}}, MacAddr{{2, 0, 0, 0, 0, 0xaa}},
      MakeIpv4(10, 0, 0, 2), MakeIpv4(10, 0, 0, 1), 9999, 5353,
      reinterpret_cast<const uint8_t*>(payload.data()), payload.size()));
  ASSERT_TRUE(bed.Run().ok());
  EXPECT_EQ(got, payload);
  EXPECT_EQ(info.src_port, 9999);
  EXPECT_EQ(info.src_ip, MakeIpv4(10, 0, 0, 2));
  EXPECT_EQ(info.full_size, payload.size());
}

}  // namespace
}  // namespace flexos
