#include <gtest/gtest.h>

#include "core/config_parser.h"

namespace flexos {
namespace {

constexpr char kFullConfig[] = R"(
# iperf with an untrusted network stack
backend = mpk-switched
compartment net
compartment app sched libc alloc
harden net libc
cfi sched
api sched thread_add thread_rm yield
allocators = global
heap = buddy
heap_bytes = 16M
shared_bytes = 8M
)";

TEST(ConfigParser, ParsesFullConfig) {
  Result<ImageConfig> config = ParseImageConfig(kFullConfig);
  ASSERT_TRUE(config.ok()) << config.status().ToString();
  EXPECT_EQ(config->backend, IsolationBackend::kMpkSwitchedStack);
  ASSERT_EQ(config->compartments.size(), 2u);
  EXPECT_EQ(config->compartments[0], std::vector<std::string>{"net"});
  EXPECT_EQ(config->compartments[1].size(), 4u);
  EXPECT_EQ(config->hardened_libs.count("net"), 1u);
  EXPECT_EQ(config->hardened_libs.count("libc"), 1u);
  EXPECT_EQ(config->cfi_libs.count("sched"), 1u);
  EXPECT_EQ(config->apis.at("sched").count("yield"), 1u);
  EXPECT_FALSE(config->per_compartment_allocators);
  EXPECT_EQ(config->heap_kind, HeapKind::kBuddy);
  EXPECT_EQ(config->heap_bytes_per_compartment, 16ull << 20);
  EXPECT_EQ(config->shared_bytes, 8ull << 20);
}

TEST(ConfigParser, MinimalSingleCompartment) {
  Result<ImageConfig> config =
      ParseImageConfig("compartment app net sched libc alloc\n");
  ASSERT_TRUE(config.ok()) << config.status().ToString();
  EXPECT_EQ(config->backend, IsolationBackend::kNone);
  EXPECT_EQ(config->compartments.size(), 1u);
}

TEST(ConfigParser, ByteSizeSuffixes) {
  Result<ImageConfig> config = ParseImageConfig(
      "compartment app\nheap_bytes = 2G\nshared_bytes = 512K\n");
  ASSERT_TRUE(config.ok());
  EXPECT_EQ(config->heap_bytes_per_compartment, 2ull << 30);
  EXPECT_EQ(config->shared_bytes, 512ull << 10);
}

TEST(ConfigParser, ErrorsCarryLineNumbers) {
  const Status status =
      ParseImageConfig("compartment app\nbogus directive\n").status();
  EXPECT_FALSE(status.ok());
  EXPECT_NE(status.message().find("line 2"), std::string::npos);
}

TEST(ConfigParser, RejectsBadValues) {
  EXPECT_FALSE(ParseImageConfig("backend = tee\ncompartment app\n").ok());
  EXPECT_FALSE(ParseImageConfig("compartment app\nheap = slab\n").ok());
  EXPECT_FALSE(ParseImageConfig("compartment app\nheap_bytes = lots\n").ok());
  EXPECT_FALSE(ParseImageConfig("compartment\n").ok());
  EXPECT_FALSE(ParseImageConfig("compartment app\nharden\n").ok());
  EXPECT_FALSE(ParseImageConfig("compartment app\nunknown = 1\n").ok());
}

TEST(ConfigParser, RejectsEmptyAndBackendlessMultiCompartment) {
  EXPECT_FALSE(ParseImageConfig("").ok());
  EXPECT_FALSE(ParseImageConfig("# only a comment\n").ok());
  // Two compartments but no isolation backend: a mis-specification.
  EXPECT_FALSE(
      ParseImageConfig("compartment net\ncompartment app\n").ok());
}

TEST(ConfigParser, RoundTripsThroughToString) {
  Result<ImageConfig> original = ParseImageConfig(kFullConfig);
  ASSERT_TRUE(original.ok());
  Result<ImageConfig> reparsed =
      ParseImageConfig(ImageConfigToString(original.value()));
  ASSERT_TRUE(reparsed.ok()) << reparsed.status().ToString();
  EXPECT_EQ(reparsed->backend, original->backend);
  EXPECT_EQ(reparsed->compartments, original->compartments);
  EXPECT_EQ(reparsed->hardened_libs, original->hardened_libs);
  EXPECT_EQ(reparsed->cfi_libs, original->cfi_libs);
  EXPECT_EQ(reparsed->apis, original->apis);
  EXPECT_EQ(reparsed->per_compartment_allocators,
            original->per_compartment_allocators);
  EXPECT_EQ(reparsed->heap_kind, original->heap_kind);
  EXPECT_EQ(reparsed->heap_bytes_per_compartment,
            original->heap_bytes_per_compartment);
}

TEST(ConfigParser, ParsesSmpDirectives) {
  Result<ImageConfig> config = ParseImageConfig(
      "backend = mpk-shared\n"
      "vcpus = 2\n"
      "compartment net\n"
      "compartment app sched libc alloc\n"
      "pin net 0\n"
      "pin app 1\n"
      "reentrant net sched\n");
  ASSERT_TRUE(config.ok()) << config.status().ToString();
  EXPECT_EQ(config->vcpus, 2);
  EXPECT_EQ(config->pins.at("net"), 0);
  EXPECT_EQ(config->pins.at("app"), 1);
  EXPECT_EQ(config->reentrant_libs,
            (std::set<std::string>{"net", "sched"}));
}

TEST(ConfigParser, SmpDirectivesRoundTripThroughToString) {
  Result<ImageConfig> original = ParseImageConfig(
      "backend = mpk-shared\n"
      "vcpus = 4\n"
      "compartment net\n"
      "compartment app sched libc alloc\n"
      "pin net 0\n"
      "pin app 3\n"
      "reentrant net\n");
  ASSERT_TRUE(original.ok()) << original.status().ToString();
  Result<ImageConfig> reparsed =
      ParseImageConfig(ImageConfigToString(original.value()));
  ASSERT_TRUE(reparsed.ok()) << reparsed.status().ToString();
  EXPECT_EQ(reparsed->vcpus, original->vcpus);
  EXPECT_EQ(reparsed->pins, original->pins);
  EXPECT_EQ(reparsed->reentrant_libs, original->reentrant_libs);
  // The single-vCPU default is the quiet one: no directive emitted.
  ImageConfig single;
  single.compartments = {{"app"}};
  EXPECT_EQ(ImageConfigToString(single).find("vcpus"), std::string::npos);
}

TEST(ConfigParser, RejectsBadSmpDirectives) {
  const char* kBase =
      "backend = mpk-shared\ncompartment net\ncompartment app sched libc "
      "alloc\n";
  // vcpus out of the supported range.
  EXPECT_FALSE(ParseImageConfig(std::string(kBase) + "vcpus = 0\n").ok());
  EXPECT_FALSE(ParseImageConfig(std::string(kBase) + "vcpus = 99\n").ok());
  // Pin targets a vCPU the machine does not have.
  EXPECT_FALSE(
      ParseImageConfig(std::string(kBase) + "vcpus = 2\npin net 2\n").ok());
  // Pin names a library that is not placed anywhere.
  EXPECT_FALSE(
      ParseImageConfig(std::string(kBase) + "vcpus = 2\npin ghost 0\n").ok());
  // Conflicting duplicate pins for one library.
  EXPECT_FALSE(ParseImageConfig(std::string(kBase) +
                                "vcpus = 2\npin net 0\npin net 1\n")
                   .ok());
  // Cohabiting libraries pinned to different vCPUs cannot both be honored.
  EXPECT_FALSE(ParseImageConfig(std::string(kBase) +
                                "vcpus = 2\npin app 0\npin sched 1\n")
                   .ok());
  // Malformed pin arity.
  EXPECT_FALSE(ParseImageConfig(std::string(kBase) + "pin net\n").ok());
}

TEST(ConfigParser, ParsesFlexwatchDirectives) {
  Result<ImageConfig> config = ParseImageConfig(
      "backend = mpk-shared\n"
      "compartment net\n"
      "compartment app sched libc alloc\n"
      "window_cycles = 64K\n"
      "slo gate.latency_ns.* p99 < 4000\n"
      "slo net.tcp.retransmits value <= 0\n");
  ASSERT_TRUE(config.ok()) << config.status().ToString();
  EXPECT_EQ(config->window_cycles, 64ull << 10);
  ASSERT_EQ(config->slos.size(), 2u);
  EXPECT_EQ(config->slos[0].pattern, "gate.latency_ns.*");
  EXPECT_EQ(config->slos[0].stat, obs::SloStat::kP99);
  EXPECT_EQ(config->slos[0].op, obs::SloOp::kLt);
  EXPECT_DOUBLE_EQ(config->slos[0].threshold, 4000.0);
  EXPECT_EQ(config->slos[1].stat, obs::SloStat::kValue);
  EXPECT_EQ(config->slos[1].op, obs::SloOp::kLe);
}

TEST(ConfigParser, FlexwatchDirectivesRoundTripThroughToString) {
  Result<ImageConfig> original = ParseImageConfig(
      "backend = mpk-shared\n"
      "compartment net\n"
      "compartment app sched libc alloc\n"
      "window_cycles = 100000\n"
      "slo gate.latency_ns.* p99 < 4000\n");
  ASSERT_TRUE(original.ok()) << original.status().ToString();
  Result<ImageConfig> reparsed =
      ParseImageConfig(ImageConfigToString(original.value()));
  ASSERT_TRUE(reparsed.ok()) << reparsed.status().ToString();
  EXPECT_EQ(reparsed->window_cycles, original->window_cycles);
  ASSERT_EQ(reparsed->slos.size(), 1u);
  EXPECT_TRUE(reparsed->slos[0] == original->slos[0]);
  // No windowing declared: the quiet default emits no directives.
  ImageConfig silent;
  silent.compartments = {{"app"}};
  EXPECT_EQ(ImageConfigToString(silent).find("window_cycles"),
            std::string::npos);
  EXPECT_EQ(ImageConfigToString(silent).find("slo "), std::string::npos);
}

TEST(ConfigParser, RejectsBadFlexwatchDirectives) {
  const char* kBase =
      "backend = mpk-shared\ncompartment net\ncompartment app sched libc "
      "alloc\n";
  EXPECT_FALSE(
      ParseImageConfig(std::string(kBase) + "window_cycles = 0\n").ok());
  EXPECT_FALSE(
      ParseImageConfig(std::string(kBase) + "window_cycles = soon\n").ok());
  EXPECT_FALSE(ParseImageConfig(std::string(kBase) + "slo\n").ok());
  EXPECT_FALSE(
      ParseImageConfig(std::string(kBase) + "slo gate.* p99 <\n").ok());
  EXPECT_FALSE(
      ParseImageConfig(std::string(kBase) + "slo gate.* p75 < 10\n").ok());
  EXPECT_FALSE(
      ParseImageConfig(std::string(kBase) + "slo gate.* p99 != 10\n").ok());
  // A bad slo error names the offending line.
  const Status status =
      ParseImageConfig(std::string(kBase) + "slo gate.* p99 < soon\n")
          .status();
  EXPECT_FALSE(status.ok());
  EXPECT_NE(status.message().find("line 4"), std::string::npos);
}

TEST(ConfigParser, ParsedConfigBuildsAnImage) {
  Result<ImageConfig> config = ParseImageConfig(
      "backend = mpk-shared\n"
      "compartment net\n"
      "compartment app sched libc alloc\n"
      "harden net\n"
      "heap_bytes = 4M\n"
      "shared_bytes = 4M\n");
  ASSERT_TRUE(config.ok()) << config.status().ToString();
  Machine machine;
  ImageBuilder builder(machine);
  Result<std::unique_ptr<Image>> image = builder.Build(config.value());
  ASSERT_TRUE(image.ok()) << image.status().ToString();
  EXPECT_EQ((*image)->compartment_count(), 2);
  EXPECT_TRUE((*image)->IsHardened("net"));
}

}  // namespace
}  // namespace flexos
