#include <gtest/gtest.h>

#include "libc/format.h"
#include "libc/gstring.h"
#include "libc/ring_buffer.h"
#include "libc/semaphore.h"
#include "sched/coop_scheduler.h"
#include "support/strings.h"

namespace flexos {
namespace {

class LibcTest : public ::testing::Test {
 protected:
  LibcTest() {
    FLEXOS_CHECK(space_.Map(0, 1 << 20, 0).ok(), "map failed");
  }

  Machine machine_;
  AddressSpace space_{machine_, "libc-test", 2 << 20};
};

TEST_F(LibcTest, StrcpyStrlenStrOut) {
  GStrcpyIn(space_, 64, "flexos");
  EXPECT_EQ(GStrlen(space_, 64, 100), 6u);
  EXPECT_EQ(GStrOut(space_, 64, 100), "flexos");
}

TEST_F(LibcTest, StrlenHitsMax) {
  space_.Fill(0, 'x', 64);
  EXPECT_EQ(GStrlen(space_, 0, 64), 64u);
}

TEST_F(LibcTest, MemcmpOrdersLikeC) {
  GStrcpyIn(space_, 0, "abcd");
  GStrcpyIn(space_, 100, "abce");
  EXPECT_LT(GMemcmp(space_, 0, 100, 4), 0);
  EXPECT_GT(GMemcmp(space_, 100, 0, 4), 0);
  EXPECT_EQ(GMemcmp(space_, 0, 100, 3), 0);
}

TEST_F(LibcTest, MemcpyAndMemset) {
  GStrcpyIn(space_, 0, "payload");
  GMemcpy(space_, 512, 0, 8);
  EXPECT_EQ(GStrOut(space_, 512, 100), "payload");
  GMemset(space_, 512, 0, 8);
  EXPECT_EQ(GStrlen(space_, 512, 8), 0u);
}

TEST_F(LibcTest, FormatWritesBoundedString) {
  const uint64_t n = GFormat(space_, 0, 64, "%s=%d", "key", 42);
  EXPECT_EQ(n, 6u);
  EXPECT_EQ(GStrOut(space_, 0, 64), "key=42");
  // Truncation keeps the NUL inside the cap.
  const uint64_t m = GFormat(space_, 100, 4, "%s", "longvalue");
  EXPECT_EQ(m, 3u);
  EXPECT_EQ(GStrOut(space_, 100, 64), "lon");
}

TEST_F(LibcTest, ParseDecimal) {
  GStrcpyIn(space_, 0, "12345x");
  EXPECT_EQ(GParseDecimal(space_, 0, 6).value(), 12345);
  GStrcpyIn(space_, 50, "-42");
  EXPECT_EQ(GParseDecimal(space_, 50, 3).value(), -42);
  GStrcpyIn(space_, 80, "abc");
  EXPECT_FALSE(GParseDecimal(space_, 80, 3).has_value());
}

// --- RingBuffer -------------------------------------------------------------

TEST_F(LibcTest, RingPushPopRoundTrip) {
  RingBuffer ring = RingBuffer::Create(space_, 0, 128);
  const char data[] = "0123456789";
  EXPECT_EQ(ring.Push(data, 10), 10u);
  EXPECT_EQ(ring.ReadableBytes(), 10u);
  char out[16] = {};
  EXPECT_EQ(ring.Pop(out, sizeof(out)), 10u);
  EXPECT_STREQ(out, "0123456789");
  EXPECT_TRUE(ring.Empty());
}

TEST_F(LibcTest, RingWrapsAround) {
  RingBuffer ring = RingBuffer::Create(space_, 0, 16);
  char buffer[16];
  for (int round = 0; round < 10; ++round) {
    const std::string chunk = StrFormat("round%03d", round);
    ASSERT_EQ(ring.Push(chunk.data(), chunk.size()), chunk.size());
    ASSERT_EQ(ring.Pop(buffer, chunk.size()), chunk.size());
    ASSERT_EQ(std::string(buffer, chunk.size()), chunk);
  }
}

TEST_F(LibcTest, RingRespectsCapacity) {
  RingBuffer ring = RingBuffer::Create(space_, 0, 8);
  const char data[] = "0123456789";
  EXPECT_EQ(ring.Push(data, 10), 8u);
  EXPECT_TRUE(ring.Full());
  EXPECT_EQ(ring.Push(data, 1), 0u);
}

TEST_F(LibcTest, RingPeekAndDiscard) {
  RingBuffer ring = RingBuffer::Create(space_, 0, 64);
  ring.Push("abcdefgh", 8);
  char out[4];
  ring.Peek(2, out, 4);
  EXPECT_EQ(std::string(out, 4), "cdef");
  EXPECT_EQ(ring.ReadableBytes(), 8u);  // Peek does not consume.
  ring.Discard(3);
  ring.Peek(0, out, 4);
  EXPECT_EQ(std::string(out, 4), "defg");
}

TEST_F(LibcTest, RingGuestSideTransfer) {
  RingBuffer ring = RingBuffer::Create(space_, 0, 256);
  GStrcpyIn(space_, 4096, "guest-data");
  EXPECT_EQ(ring.PushFromGuest(4096, 10), 10u);
  EXPECT_EQ(ring.PopToGuest(8192, 10), 10u);
  EXPECT_EQ(GStrOut(space_, 8192, 32), "guest-data");
}

TEST_F(LibcTest, RingAttachSeesSameState) {
  RingBuffer ring = RingBuffer::Create(space_, 0, 64);
  ring.Push("xy", 2);
  RingBuffer attached = RingBuffer::Attach(space_, 0);
  EXPECT_EQ(attached.capacity(), 64u);
  char out[2];
  EXPECT_EQ(attached.Pop(out, 2), 2u);
  EXPECT_TRUE(ring.Empty());
}

// --- Semaphore --------------------------------------------------------------

TEST(SemaphoreTest, ProducerConsumer) {
  Machine machine;
  CoopScheduler sched(machine);
  Semaphore items(sched, "items", 0);
  std::string trace;
  ASSERT_TRUE(sched.Spawn("consumer", [&] {
    for (int i = 0; i < 3; ++i) {
      items.Wait();
      trace += 'c';
    }
  }).ok());
  ASSERT_TRUE(sched.Spawn("producer", [&] {
    for (int i = 0; i < 3; ++i) {
      trace += 'p';
      items.Signal();
      sched.Yield();
    }
  }).ok());
  EXPECT_TRUE(sched.Run().ok());
  EXPECT_EQ(trace, "pcpcpc");
}

TEST(SemaphoreTest, TryWaitNeverBlocks) {
  Machine machine;
  CoopScheduler sched(machine);
  Semaphore sem(sched, "s", 1);
  EXPECT_TRUE(sem.TryWait());
  EXPECT_FALSE(sem.TryWait());
  sem.Signal();
  EXPECT_TRUE(sem.TryWait());
}

TEST(SemaphoreTest, InitialCountConsumable) {
  Machine machine;
  CoopScheduler sched(machine);
  Semaphore sem(sched, "s", 2);
  bool done = false;
  ASSERT_TRUE(sched.Spawn("t", [&] {
    sem.Wait();
    sem.Wait();
    done = true;
  }).ok());
  EXPECT_TRUE(sched.Run().ok());
  EXPECT_TRUE(done);
}

TEST(SemaphoreTest, RoutedCallsGoThroughRouter) {
  // With a router installed, scheduler operations cross libc -> sched.
  class CountingRouter final : public GateRouter {
   public:
    int calls = 0;
    void Call(std::string_view from, std::string_view to,
              FunctionRef<void()> body) override {
      EXPECT_EQ(from, kLibLibc);
      EXPECT_EQ(to, kLibSched);
      ++calls;
      body();
    }
  };
  Machine machine;
  CoopScheduler sched(machine);
  CountingRouter router;
  Semaphore sem(sched, "s", 0, &router);
  ASSERT_TRUE(sched.Spawn("w", [&] { sem.Wait(); }).ok());
  ASSERT_TRUE(sched.Spawn("s", [&] { sem.Signal(); }).ok());
  EXPECT_TRUE(sched.Run().ok());
  EXPECT_GE(router.calls, 2);
}

}  // namespace
}  // namespace flexos
