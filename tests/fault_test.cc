// flexfault: plan parsing, deterministic injection, trap containment on
// isolating boundaries (and deliberate non-containment on trusted ones),
// the supervisor's quarantine/restart/fail state machine, heap reset on
// restart, metric reconciliation (injected == trapped + dropped), and the
// FL009 lint rule.
#include <gtest/gtest.h>

#include "alloc/allocator.h"
#include "analysis/flexlint.h"
#include "core/config_parser.h"
#include "core/image_builder.h"
#include "fault/injector.h"
#include "fault/supervisor.h"
#include "hw/trap.h"
#include "obs/names.h"

namespace flexos {
namespace {

using fault::CompartmentHealth;
using fault::FaultKind;
using fault::FaultPlan;
using fault::FaultRule;
using fault::FaultSite;

ImageConfig TwoCompartments(IsolationBackend backend) {
  ImageConfig config;
  config.backend = backend;
  config.compartments = {{"net"}, {"app", "sched", "libc", "alloc"}};
  return config;
}

FaultRule GateFault(int comp, FaultKind kind = FaultKind::kProtectionFault) {
  FaultRule rule;
  rule.site = FaultSite::kGateCross;
  rule.kind = kind;
  rule.compartment = comp;
  return rule;
}

// --- Name tables ---------------------------------------------------------

TEST(FaultNames, SiteAndKindRoundTrip) {
  for (int i = 0; i < fault::kNumFaultSites; ++i) {
    const auto site = static_cast<FaultSite>(i);
    const auto back = fault::FaultSiteFromName(fault::FaultSiteName(site));
    ASSERT_TRUE(back.has_value()) << fault::FaultSiteName(site);
    EXPECT_EQ(*back, site);
  }
  for (int i = 0; i <= static_cast<int>(FaultKind::kSchedDelay); ++i) {
    const auto kind = static_cast<FaultKind>(i);
    const auto back = fault::FaultKindFromName(fault::FaultKindName(kind));
    ASSERT_TRUE(back.has_value()) << fault::FaultKindName(kind);
    EXPECT_EQ(*back, kind);
  }
  EXPECT_FALSE(fault::FaultSiteFromName("bogus").has_value());
  EXPECT_FALSE(fault::FaultKindFromName("bogus").has_value());
}

TEST(TrapNames, EveryTrapKindRoundTripsThroughItsName) {
  for (int i = 0; i < kNumTrapKinds; ++i) {
    const auto kind = static_cast<TrapKind>(i);
    const std::string_view name = TrapKindName(kind);
    EXPECT_NE(name, "?");
    const std::optional<TrapKind> back = TrapKindFromName(name);
    ASSERT_TRUE(back.has_value()) << name;
    EXPECT_EQ(*back, kind);
  }
  EXPECT_FALSE(TrapKindFromName("NOT_A_TRAP").has_value());
}

// --- Plan parsing --------------------------------------------------------

TEST(FaultPlanParse, RoundTripsThroughText) {
  const std::string text =
      "# chaos profile\n"
      "seed 7\n"
      "inject site=gate kind=protection-fault comp=1 after=100 every=50\n"
      "inject site=nic-tx kind=packet-drop count=3 prob=0.5\n"
      "inject site=alloc kind=alloc-fail arg=64\n";
  const Result<FaultPlan> plan = fault::ParseFaultPlan(text);
  ASSERT_TRUE(plan.ok()) << plan.status().ToString();
  EXPECT_EQ(plan.value().seed, 7u);
  ASSERT_EQ(plan.value().rules.size(), 3u);
  EXPECT_EQ(plan.value().rules[0].compartment, 1);
  EXPECT_EQ(plan.value().rules[0].after, 100u);
  EXPECT_EQ(plan.value().rules[0].every, 50u);
  EXPECT_EQ(plan.value().rules[1].count, 3u);
  EXPECT_DOUBLE_EQ(plan.value().rules[1].probability, 0.5);
  EXPECT_EQ(plan.value().rules[2].arg, 64u);

  const std::string serialized = fault::FaultPlanToString(plan.value());
  const Result<FaultPlan> reparsed = fault::ParseFaultPlan(serialized);
  ASSERT_TRUE(reparsed.ok()) << reparsed.status().ToString();
  EXPECT_EQ(fault::FaultPlanToString(reparsed.value()), serialized);
}

TEST(FaultPlanParse, ErrorsNameTheLine) {
  const Result<FaultPlan> bad =
      fault::ParseFaultPlan("seed 1\ninject site=nowhere kind=packet-drop\n");
  ASSERT_FALSE(bad.ok());
  EXPECT_NE(bad.status().ToString().find("line 2"), std::string::npos)
      << bad.status().ToString();
  EXPECT_FALSE(fault::ParseFaultPlan("inject kind=packet-drop").ok());
  EXPECT_FALSE(
      fault::ParseFaultPlan("inject site=gate kind=packet-drop prob=2.0")
          .ok());
  EXPECT_FALSE(
      fault::ParseFaultPlan("inject site=gate kind=packet-drop after=0")
          .ok());
}

// --- Injector ------------------------------------------------------------

TEST(FaultInjector, EmptyPlanArmsNothing) {
  Machine machine;
  EXPECT_FALSE(machine.injector().enabled());
  for (int i = 0; i < fault::kNumFaultSites; ++i) {
    EXPECT_FALSE(machine.injector().armed(static_cast<FaultSite>(i)));
  }
}

TEST(FaultInjector, AfterEveryCountSemantics) {
  Machine machine;
  FaultPlan plan;
  FaultRule rule = GateFault(-1, FaultKind::kPacketDrop);
  rule.compartment = -1;
  rule.after = 3;   // First fire on the 3rd matching occurrence...
  rule.every = 2;   // ...then every 2nd...
  rule.count = 2;   // ...at most twice.
  plan.rules = {rule};
  machine.injector().LoadPlan(plan);

  std::vector<uint64_t> fired_at;
  for (uint64_t occurrence = 1; occurrence <= 10; ++occurrence) {
    if (machine.injector().Check(FaultSite::kGateCross, 0).has_value()) {
      fired_at.push_back(occurrence);
    }
  }
  EXPECT_EQ(fired_at, (std::vector<uint64_t>{3, 5}));
  EXPECT_EQ(machine.injector().injected(), 2u);
  EXPECT_EQ(machine.injector().dropped(), 2u);  // Absorb-class kind.
}

TEST(FaultInjector, CompartmentFilterOnlyCountsMatches) {
  Machine machine;
  FaultPlan plan;
  plan.rules = {GateFault(2, FaultKind::kPacketDrop)};
  machine.injector().LoadPlan(plan);
  EXPECT_FALSE(machine.injector().Check(FaultSite::kGateCross, 1).has_value());
  auto hit = machine.injector().Check(FaultSite::kGateCross, 2);
  ASSERT_TRUE(hit.has_value());
  EXPECT_EQ(hit->kind, FaultKind::kPacketDrop);
}

TEST(FaultInjector, SameSeedSamePlanReproducesTheEventLog) {
  auto run = [](uint64_t seed) {
    Machine machine;
    FaultPlan plan;
    plan.seed = seed;
    FaultRule rule = GateFault(-1, FaultKind::kPacketDrop);
    rule.compartment = -1;
    rule.probability = 0.3;
    plan.rules = {rule};
    machine.injector().LoadPlan(plan);
    for (int i = 0; i < 200; ++i) {
      machine.clock().Charge(17);
      (void)machine.injector().Check(FaultSite::kGateCross, i % 3);
    }
    return machine.injector().events();
  };
  const auto first = run(11);
  const auto second = run(11);
  ASSERT_FALSE(first.empty());
  ASSERT_EQ(first.size(), second.size());
  for (size_t i = 0; i < first.size(); ++i) {
    EXPECT_EQ(first[i], second[i]) << first[i].ToString() << " vs "
                                   << second[i].ToString();
  }
  // A different seed diverges (probability-gated rule).
  const auto other = run(12);
  EXPECT_FALSE(first == other);
}

// --- Gate containment matrix ---------------------------------------------

TEST(FaultContainment, IsolatingBackendsContainTrustedPropagates) {
  struct Case {
    IsolationBackend backend;
    bool contains;
  };
  const Case cases[] = {
      {IsolationBackend::kNone, false},
      {IsolationBackend::kMpkSharedStack, true},
      {IsolationBackend::kMpkSwitchedStack, true},
      {IsolationBackend::kVmRpc, true},
  };
  for (const Case& c : cases) {
    SCOPED_TRACE(IsolationBackendName(c.backend));
    Machine machine;
    ImageBuilder builder(machine);
    auto image = builder.Build(TwoCompartments(c.backend)).value();
    fault::CompartmentSupervisor supervisor(*image);
    image->SetFaultHandler(&supervisor);

    FaultPlan plan;
    plan.rules = {GateFault(image->CompartmentOf("net"))};
    machine.injector().LoadPlan(plan);

    bool ran = false;
    const RouteHandle route = image->Resolve("app", "net");
    if (c.contains) {
      const Status status = image->TryCall(route, [&] { ran = true; });
      EXPECT_EQ(status.code(), ErrorCode::kUnavailable)
          << status.ToString();
      EXPECT_FALSE(ran);
      EXPECT_EQ(supervisor.trapped(), 1u);
      EXPECT_EQ(supervisor.health(image->CompartmentOf("net")),
                CompartmentHealth::kQuarantined);
    } else {
      // Trusted function-call boundary: the trap must NOT be swallowed.
      EXPECT_THROW((void)image->TryCall(route, [&] { ran = true; }),
                   TrapException);
      EXPECT_EQ(supervisor.trapped(), 0u);
    }
  }
}

TEST(FaultContainment, VmLocalRepllicatedCalleeIsNotSupervised) {
  Machine machine;
  ImageBuilder builder(machine);
  auto image = builder.Build(TwoCompartments(IsolationBackend::kVmRpc)).value();
  fault::CompartmentSupervisor supervisor(*image);
  image->SetFaultHandler(&supervisor);
  // libc is VM-replicated: the call stays leaf-local, so TryCall degrades
  // to a plain (unsupervised) call and a trap would propagate. No plan
  // loaded — just assert the route classification.
  EXPECT_FALSE(image->IsIsolatingBoundary(image->Resolve("app", "libc")));
  EXPECT_TRUE(image->IsIsolatingBoundary(image->Resolve("app", "net")));
}

TEST(FaultContainment, WithoutHandlerTryCallPropagates) {
  Machine machine;
  ImageBuilder builder(machine);
  auto image =
      builder.Build(TwoCompartments(IsolationBackend::kMpkSharedStack))
          .value();
  FaultPlan plan;
  plan.rules = {GateFault(image->CompartmentOf("net"))};
  machine.injector().LoadPlan(plan);
  EXPECT_THROW((void)image->TryCall(image->Resolve("app", "net"), [] {}),
               TrapException);
}

TEST(FaultContainment, RpcTimeoutChargesTheDeadlineThenContains) {
  Machine machine;
  ImageBuilder builder(machine);
  auto image = builder.Build(TwoCompartments(IsolationBackend::kVmRpc)).value();
  fault::CompartmentSupervisor supervisor(*image);
  image->SetFaultHandler(&supervisor);

  FaultPlan plan;
  FaultRule rule = GateFault(image->CompartmentOf("net"),
                             FaultKind::kRpcTimeout);
  rule.arg = 5'000'000;  // 5 ms deadline.
  plan.rules = {rule};
  machine.injector().LoadPlan(plan);

  const uint64_t before = machine.clock().cycles();
  const Status status = image->TryCall(image->Resolve("app", "net"), [] {});
  EXPECT_EQ(status.code(), ErrorCode::kUnavailable);
  EXPECT_GE(machine.clock().cycles() - before,
            machine.clock().NanosToCycles(5'000'000));
  ASSERT_EQ(supervisor.episodes().size(), 1u);
  EXPECT_EQ(supervisor.episodes()[0].trap, TrapKind::kRpcTimeout);
}

// --- Supervisor state machine --------------------------------------------

TEST(Supervisor, QuarantineExpiresIntoARestartWithHeapResetAndHooks) {
  Machine machine;
  ImageBuilder builder(machine);
  auto image =
      builder.Build(TwoCompartments(IsolationBackend::kMpkSharedStack))
          .value();
  fault::RestartPolicy policy;
  policy.backoff_ns = 1'000'000;
  fault::CompartmentSupervisor supervisor(*image, policy);
  image->SetFaultHandler(&supervisor);
  const int net = image->CompartmentOf("net");

  // Dirty the net heap so the restart has something to reclaim.
  Allocator& heap = image->AllocatorOf("net");
  ASSERT_TRUE(heap.Allocate(4096).ok());
  ASSERT_GT(heap.stats().bytes_in_use, 0u);

  int hook_runs = 0;
  supervisor.RegisterInitHook(net, "net-reinit", [&hook_runs] {
    ++hook_runs;
    return Status::Ok();
  });
  EXPECT_TRUE(supervisor.HasInitHook(net));

  FaultPlan plan;
  FaultRule rule = GateFault(net);
  rule.count = 1;  // Only the first crossing faults.
  plan.rules = {rule};
  machine.injector().LoadPlan(plan);

  const RouteHandle route = image->Resolve("app", "net");
  EXPECT_EQ(image->TryCall(route, [] {}).code(), ErrorCode::kUnavailable);
  EXPECT_EQ(supervisor.health(net), CompartmentHealth::kQuarantined);

  // Still inside the backoff window: refused without crossing.
  bool ran = false;
  EXPECT_EQ(image->TryCall(route, [&] { ran = true; }).code(),
            ErrorCode::kUnavailable);
  EXPECT_FALSE(ran);

  // Jump past the quarantine deadline: next admission restarts.
  const uint64_t deadline = supervisor.NextRestartCycles();
  ASSERT_NE(deadline, fault::CompartmentSupervisor::kNoRestartPending);
  machine.clock().AdvanceTo(deadline);
  EXPECT_TRUE(image->TryCall(route, [&] { ran = true; }).ok());
  EXPECT_TRUE(ran);
  EXPECT_EQ(supervisor.health(net), CompartmentHealth::kHealthy);
  EXPECT_EQ(supervisor.restarts(net), 1);
  EXPECT_EQ(hook_runs, 1);
  EXPECT_EQ(heap.stats().bytes_in_use, 0u);  // Wholesale reset, no leak.

  ASSERT_EQ(supervisor.episodes().size(), 1u);
  EXPECT_GT(supervisor.episodes()[0].restart_cycles,
            supervisor.episodes()[0].trap_cycles);
  EXPECT_EQ(supervisor.episodes()[0].restart_number, 1);
}

TEST(Supervisor, BudgetExhaustionIsPermanent) {
  Machine machine;
  ImageBuilder builder(machine);
  auto image =
      builder.Build(TwoCompartments(IsolationBackend::kMpkSharedStack))
          .value();
  fault::RestartPolicy policy;
  policy.backoff_ns = 1000;
  policy.restart_budget = 2;
  fault::CompartmentSupervisor supervisor(*image, policy);
  image->SetFaultHandler(&supervisor);
  const int net = image->CompartmentOf("net");

  FaultPlan plan;
  plan.rules = {GateFault(net)};  // Every crossing faults, forever.
  machine.injector().LoadPlan(plan);

  const RouteHandle route = image->Resolve("app", "net");
  // Each round: trap -> quarantine -> (jump) -> restart -> trap again. The
  // budget check is lazy: the failed transition lands on the admission
  // *after* the last budgeted restart re-trapped, hence budget + 2 rounds.
  for (int round = 0; round < policy.restart_budget + 2; ++round) {
    EXPECT_EQ(image->TryCall(route, [] {}).code(), ErrorCode::kUnavailable);
    const uint64_t deadline = supervisor.NextRestartCycles();
    if (deadline != fault::CompartmentSupervisor::kNoRestartPending) {
      machine.clock().AdvanceTo(deadline);
    }
  }
  EXPECT_EQ(supervisor.health(net), CompartmentHealth::kFailed);
  EXPECT_EQ(supervisor.restarts(net), 2);
  // Failed is terminal: no further crossings, no further traps.
  const uint64_t trapped_before = supervisor.trapped();
  EXPECT_EQ(image->TryCall(route, [] {}).code(), ErrorCode::kUnavailable);
  EXPECT_EQ(supervisor.trapped(), trapped_before);
}

TEST(Supervisor, FailingInitHookRequarantinesWithEscalatedBackoff) {
  Machine machine;
  ImageBuilder builder(machine);
  auto image =
      builder.Build(TwoCompartments(IsolationBackend::kMpkSharedStack))
          .value();
  fault::RestartPolicy policy;
  policy.backoff_ns = 1'000'000;
  policy.backoff_multiplier = 2.0;
  fault::CompartmentSupervisor supervisor(*image, policy);
  image->SetFaultHandler(&supervisor);
  const int net = image->CompartmentOf("net");
  supervisor.RegisterInitHook(net, "always-fails", [] {
    return Status(ErrorCode::kInternal, "cannot rebuild");
  });

  FaultPlan plan;
  FaultRule rule = GateFault(net);
  rule.count = 1;
  plan.rules = {rule};
  machine.injector().LoadPlan(plan);

  const RouteHandle route = image->Resolve("app", "net");
  EXPECT_EQ(image->TryCall(route, [] {}).code(), ErrorCode::kUnavailable);
  const uint64_t first_deadline = supervisor.NextRestartCycles();
  machine.clock().AdvanceTo(first_deadline);
  // Restart attempt runs the hook, which fails -> quarantined again, with
  // a longer window than the first.
  EXPECT_EQ(image->TryCall(route, [] {}).code(), ErrorCode::kUnavailable);
  EXPECT_EQ(supervisor.health(net), CompartmentHealth::kQuarantined);
  const uint64_t second_deadline = supervisor.NextRestartCycles();
  EXPECT_GT(second_deadline - machine.clock().cycles(),
            first_deadline -
                (first_deadline -
                 machine.clock().NanosToCycles(policy.backoff_ns)));
}

TEST(Supervisor, MetricsReconcileInjectedEqualsTrappedPlusDropped) {
  Machine machine;
  ImageBuilder builder(machine);
  auto image =
      builder.Build(TwoCompartments(IsolationBackend::kMpkSharedStack))
          .value();
  fault::CompartmentSupervisor supervisor(*image);
  image->SetFaultHandler(&supervisor);
  const int net = image->CompartmentOf("net");

  FaultPlan plan;
  FaultRule trap_rule = GateFault(net);
  trap_rule.every = 3;
  FaultRule drop_rule;
  drop_rule.site = FaultSite::kAlloc;
  drop_rule.kind = FaultKind::kAllocFail;
  drop_rule.every = 4;
  plan.rules = {trap_rule, drop_rule};
  machine.injector().LoadPlan(plan);

  Allocator& heap = image->AllocatorOf("app");
  const RouteHandle route = image->Resolve("app", "net");
  for (int i = 0; i < 24; ++i) {
    (void)image->TryCall(route, [] {});
    const uint64_t deadline = supervisor.NextRestartCycles();
    if (deadline != fault::CompartmentSupervisor::kNoRestartPending) {
      machine.clock().AdvanceTo(deadline);
    }
    (void)heap.Allocate(64);
  }
  const auto& injector = machine.injector();
  EXPECT_GT(injector.injected(), 0u);
  EXPECT_EQ(injector.injected(), supervisor.trapped() + injector.dropped());
  EXPECT_EQ(
      machine.metrics().GetCounter(obs::kMetricFaultInjected).value(),
      injector.injected());
  EXPECT_EQ(machine.metrics().GetCounter(obs::kMetricFaultTrapped).value(),
            supervisor.trapped());
  EXPECT_EQ(machine.metrics().GetCounter(obs::kMetricFaultDropped).value(),
            injector.dropped());
}

// --- TryCallR and heap reset ---------------------------------------------

TEST(TryCallR, ReturnsTheBodyValueOrTheContainmentError) {
  Machine machine;
  ImageBuilder builder(machine);
  auto image =
      builder.Build(TwoCompartments(IsolationBackend::kMpkSharedStack))
          .value();
  fault::CompartmentSupervisor supervisor(*image);
  image->SetFaultHandler(&supervisor);
  const RouteHandle route = image->Resolve("app", "net");

  Result<int> value = image->TryCallR(route, [] { return 41 + 1; });
  ASSERT_TRUE(value.ok());
  EXPECT_EQ(value.value(), 42);

  FaultPlan plan;
  plan.rules = {GateFault(image->CompartmentOf("net"))};
  machine.injector().LoadPlan(plan);
  Result<int> contained = image->TryCallR(route, [] { return 0; });
  EXPECT_EQ(contained.status().code(), ErrorCode::kUnavailable);
}

TEST(ResetCompartmentHeap, RefusesSharedGlobalAllocators) {
  Machine machine;
  ImageBuilder builder(machine);
  ImageConfig config = TwoCompartments(IsolationBackend::kMpkSharedStack);
  config.per_compartment_allocators = false;
  auto image = builder.Build(config).value();
  EXPECT_EQ(image->ResetCompartmentHeap(0).code(),
            ErrorCode::kFailedPrecondition);
  EXPECT_EQ(image->ResetCompartmentHeap(99).code(),
            ErrorCode::kInvalidArgument);
}

// --- Config + lint integration -------------------------------------------

TEST(RestartHookConfig, ParsesAndRoundTrips) {
  const Result<ImageConfig> config = ParseImageConfig(
      "backend = mpk-shared\n"
      "compartment net\n"
      "compartment app sched libc alloc\n"
      "restart_hook net\n");
  ASSERT_TRUE(config.ok()) << config.status().ToString();
  EXPECT_EQ(config.value().restart_hook_libs.count("net"), 1u);
  const std::string text = ImageConfigToString(config.value());
  EXPECT_NE(text.find("restart_hook net"), std::string::npos) << text;
  const Result<ImageConfig> reparsed = ParseImageConfig(text);
  ASSERT_TRUE(reparsed.ok());
  EXPECT_EQ(reparsed.value().restart_hook_libs,
            config.value().restart_hook_libs);
  EXPECT_FALSE(ParseImageConfig("compartment app\nrestart_hook\n").ok());
}

TEST(LintFL009, FlagsRestartableCompartmentsWithoutHooks) {
  ImageConfig config = TwoCompartments(IsolationBackend::kMpkSharedStack);
  const LintReport bare = LintConfig(config);
  EXPECT_EQ(bare.CountForRule(kRuleNoInitHook), 2u) << bare.ToText();

  config.restart_hook_libs = {"net"};
  const LintReport hooked = LintConfig(config);
  EXPECT_EQ(hooked.CountForRule(kRuleNoInitHook), 1u) << hooked.ToText();

  // Trusted builds have no restartable boundary: nothing to flag.
  ImageConfig trusted = TwoCompartments(IsolationBackend::kNone);
  EXPECT_EQ(LintConfig(trusted).CountForRule(kRuleNoInitHook), 0u);
}

TEST(LintFL009, BuiltImageUsesTheInstalledHandler) {
  Machine machine;
  ImageBuilder builder(machine);
  auto image =
      builder.Build(TwoCompartments(IsolationBackend::kMpkSharedStack))
          .value();
  // No fault handler: the rule does not apply.
  EXPECT_EQ(LintImage(*image).CountForRule(kRuleNoInitHook), 0u);

  fault::CompartmentSupervisor supervisor(*image);
  image->SetFaultHandler(&supervisor);
  EXPECT_EQ(LintImage(*image).CountForRule(kRuleNoInitHook), 2u);
  supervisor.RegisterInitHook(image->CompartmentOf("net"), "reinit",
                              [] { return Status::Ok(); });
  EXPECT_EQ(LintImage(*image).CountForRule(kRuleNoInitHook), 1u);
}

}  // namespace
}  // namespace flexos
