#include <gtest/gtest.h>

#include <map>

#include "alloc/allocator_registry.h"
#include "alloc/buddy_allocator.h"
#include "alloc/freelist_heap.h"
#include "alloc/hardened_heap.h"
#include "alloc/region_allocator.h"
#include "support/rng.h"

namespace flexos {
namespace {

class AllocTest : public ::testing::Test {
 protected:
  static constexpr uint64_t kArena = 1 << 20;

  AllocTest() {
    FLEXOS_CHECK(space_.Map(0, 4 << 20, 0).ok(), "map failed");
  }

  Machine machine_;
  AddressSpace space_{machine_, "alloc-test", 8 << 20};
};

// --- RegionAllocator --------------------------------------------------------

TEST_F(AllocTest, RegionBumpsAndAligns) {
  RegionAllocator region(space_, 0, kArena);
  const Gaddr a = region.Allocate(10, 16).value();
  const Gaddr b = region.Allocate(10, 64).value();
  EXPECT_EQ(a % 16, 0u);
  EXPECT_EQ(b % 64, 0u);
  EXPECT_GT(b, a);
  EXPECT_TRUE(region.Free(a).ok());
}

TEST_F(AllocTest, RegionExhausts) {
  RegionAllocator region(space_, 0, 128);
  EXPECT_TRUE(region.Allocate(100).ok());
  EXPECT_EQ(region.Allocate(100).code(), ErrorCode::kOutOfMemory);
  region.Reset();
  EXPECT_TRUE(region.Allocate(100).ok());
}

TEST_F(AllocTest, RegionRejectsBadAlign) {
  RegionAllocator region(space_, 0, kArena);
  EXPECT_EQ(region.Allocate(8, 3).code(), ErrorCode::kInvalidArgument);
}

// --- BuddyAllocator ---------------------------------------------------------

TEST_F(AllocTest, BuddyAllocFreeRoundTrip) {
  BuddyAllocator buddy(space_, 0, kArena);
  const Gaddr a = buddy.Allocate(100).value();
  EXPECT_EQ(buddy.UsableSize(a).value(), 128u);  // Rounded to a block.
  EXPECT_TRUE(buddy.Free(a).ok());
  EXPECT_EQ(buddy.FreeBytes(), kArena);
  EXPECT_TRUE(buddy.CheckInvariants());
}

TEST_F(AllocTest, BuddyDetectsDoubleFree) {
  BuddyAllocator buddy(space_, 0, kArena);
  const Gaddr a = buddy.Allocate(64).value();
  EXPECT_TRUE(buddy.Free(a).ok());
  EXPECT_EQ(buddy.Free(a).code(), ErrorCode::kInvalidArgument);
}

TEST_F(AllocTest, BuddyCoalescesBuddies) {
  BuddyAllocator buddy(space_, 0, kArena);
  const Gaddr a = buddy.Allocate(64).value();
  const Gaddr b = buddy.Allocate(64).value();
  EXPECT_TRUE(buddy.Free(a).ok());
  EXPECT_TRUE(buddy.Free(b).ok());
  EXPECT_EQ(buddy.FreeBytes(), kArena);
  // After full coalescing a max-size block must be allocatable again.
  EXPECT_TRUE(buddy.Allocate(kArena).ok());
}

TEST_F(AllocTest, BuddyRejectsOversized) {
  BuddyAllocator buddy(space_, 0, kArena);
  EXPECT_EQ(buddy.Allocate(kArena + 1).code(), ErrorCode::kOutOfMemory);
}

TEST_F(AllocTest, BuddyAlignmentHonored) {
  BuddyAllocator buddy(space_, 0, kArena);
  const Gaddr a = buddy.Allocate(10, 4096).value();
  EXPECT_EQ(a % 4096, 0u);
}

TEST(BuddyProperty, RandomTraceKeepsInvariants) {
  Machine machine;
  AddressSpace space(machine, "buddy-prop", 8 << 20);
  ASSERT_TRUE(space.Map(0, 4 << 20, 0).ok());
  BuddyAllocator buddy(space, 0, 1 << 20);
  Rng rng(2024);
  std::vector<Gaddr> live;
  for (int step = 0; step < 4000; ++step) {
    if (live.empty() || rng.NextBool(0.6)) {
      const uint64_t size = 1 + rng.NextBelow(8192);
      Result<Gaddr> addr = buddy.Allocate(size);
      if (addr.ok()) {
        live.push_back(addr.value());
      }
    } else {
      const size_t index = rng.NextBelow(live.size());
      ASSERT_TRUE(buddy.Free(live[index]).ok());
      live[index] = live.back();
      live.pop_back();
    }
    if (step % 500 == 0) {
      ASSERT_TRUE(buddy.CheckInvariants()) << "at step " << step;
    }
  }
  for (Gaddr addr : live) {
    ASSERT_TRUE(buddy.Free(addr).ok());
  }
  EXPECT_TRUE(buddy.CheckInvariants());
  EXPECT_EQ(buddy.FreeBytes(), 1u << 20);
}

// --- FreelistHeap -----------------------------------------------------------

TEST_F(AllocTest, FreelistRoundTripAndReuse) {
  FreelistHeap heap(space_, 0, kArena);
  const Gaddr a = heap.Allocate(100).value();
  EXPECT_GE(heap.UsableSize(a).value(), 100u);
  EXPECT_TRUE(heap.Free(a).ok());
  const Gaddr b = heap.Allocate(100).value();
  EXPECT_EQ(a, b);  // First fit reuses the freed chunk.
  EXPECT_TRUE(heap.CheckInvariants());
}

TEST_F(AllocTest, FreelistDetectsDoubleFreeAndBadPointer) {
  FreelistHeap heap(space_, 0, kArena);
  const Gaddr a = heap.Allocate(64).value();
  EXPECT_TRUE(heap.Free(a).ok());
  EXPECT_EQ(heap.Free(a).code(), ErrorCode::kInvalidArgument);
  EXPECT_EQ(heap.Free(a + 8).code(), ErrorCode::kInvalidArgument);
}

TEST_F(AllocTest, FreelistCoalesces) {
  FreelistHeap heap(space_, 0, kArena);
  const Gaddr a = heap.Allocate(1000).value();
  const Gaddr b = heap.Allocate(1000).value();
  const Gaddr c = heap.Allocate(1000).value();
  (void)b;
  EXPECT_TRUE(heap.Free(a).ok());
  EXPECT_TRUE(heap.Free(c).ok());
  EXPECT_TRUE(heap.Free(b).ok());
  EXPECT_TRUE(heap.CheckInvariants());
  EXPECT_EQ(heap.FreeBytes(), kArena);
  // Everything coalesced back: a max allocation fits again.
  EXPECT_TRUE(heap.Allocate(kArena - 64).ok());
}

TEST_F(AllocTest, FreelistAlignmentWithPadding) {
  FreelistHeap heap(space_, 0, kArena);
  (void)heap.Allocate(24).value();
  const Gaddr b = heap.Allocate(64, 256).value();
  EXPECT_EQ(b % 256, 0u);
  EXPECT_TRUE(heap.Free(b).ok());
  EXPECT_TRUE(heap.CheckInvariants());
}

TEST(FreelistProperty, RandomTraceKeepsInvariants) {
  Machine machine;
  AddressSpace space(machine, "fl-prop", 8 << 20);
  ASSERT_TRUE(space.Map(0, 4 << 20, 0).ok());
  FreelistHeap heap(space, 0, 1 << 20);
  Rng rng(77);
  std::map<Gaddr, uint64_t> live;
  for (int step = 0; step < 4000; ++step) {
    if (live.empty() || rng.NextBool(0.55)) {
      const uint64_t size = 1 + rng.NextBelow(4096);
      Result<Gaddr> addr = heap.Allocate(size, uint64_t{16}
                                                   << rng.NextBelow(5));
      if (addr.ok()) {
        // No live allocation may overlap another.
        auto next = live.upper_bound(addr.value());
        if (next != live.end()) {
          ASSERT_LE(addr.value() + size, next->first);
        }
        if (next != live.begin()) {
          auto prev = std::prev(next);
          ASSERT_LE(prev->first + prev->second, addr.value());
        }
        live[addr.value()] = size;
      }
    } else {
      auto it = live.begin();
      std::advance(it, rng.NextBelow(live.size()));
      ASSERT_TRUE(heap.Free(it->first).ok());
      live.erase(it);
    }
    if (step % 500 == 0) {
      ASSERT_TRUE(heap.CheckInvariants()) << "at step " << step;
    }
  }
  for (const auto& [addr, size] : live) {
    ASSERT_TRUE(heap.Free(addr).ok());
  }
  EXPECT_TRUE(heap.CheckInvariants());
  EXPECT_EQ(heap.FreeBytes(), 1u << 20);
}

// --- HardenedHeap -----------------------------------------------------------

class HardenedTest : public AllocTest {
 protected:
  HardenedTest() : backing_(space_, 0, kArena), hardened_(backing_, 4096) {
    machine_.context().shadow_checks = true;
  }

  FreelistHeap backing_;
  HardenedHeap hardened_;
};

TEST_F(HardenedTest, PayloadAccessibleRedzonesPoisoned) {
  const Gaddr a = hardened_.Allocate(100).value();
  std::vector<uint8_t> buffer(100, 0xab);
  EXPECT_NO_THROW(space_.Write(a, buffer.data(), buffer.size()));
  // One byte past the payload hits the tail padding/redzone.
  uint8_t byte = 1;
  EXPECT_THROW(space_.Write(a + 100, &byte, 1), TrapException);
  // Before the payload is the left redzone.
  EXPECT_THROW(space_.Write(a - 1, &byte, 1), TrapException);
}

TEST_F(HardenedTest, UseAfterFreeCaughtViaQuarantine) {
  const Gaddr a = hardened_.Allocate(64).value();
  ASSERT_TRUE(hardened_.Free(a).ok());
  uint8_t byte = 0;
  try {
    space_.Read(a, &byte, 1);
    FAIL() << "use-after-free not caught";
  } catch (const TrapException& trap) {
    EXPECT_EQ(trap.info().kind, TrapKind::kAsanViolation);
  }
}

TEST_F(HardenedTest, DoubleFreeRejected) {
  const Gaddr a = hardened_.Allocate(64).value();
  ASSERT_TRUE(hardened_.Free(a).ok());
  EXPECT_EQ(hardened_.Free(a).code(), ErrorCode::kInvalidArgument);
}

TEST_F(HardenedTest, QuarantineEvictsAndMemoryIsReusable) {
  // Quarantine capacity is 4096 bytes; freeing more must recycle cleanly.
  std::vector<Gaddr> addrs;
  for (int i = 0; i < 64; ++i) {
    addrs.push_back(hardened_.Allocate(256).value());
  }
  for (Gaddr addr : addrs) {
    ASSERT_TRUE(hardened_.Free(addr).ok());
  }
  EXPECT_LE(hardened_.quarantined_bytes(), 4096u);
  // New allocations reuse evicted memory and are accessible.
  const Gaddr fresh = hardened_.Allocate(256).value();
  std::vector<uint8_t> buffer(256, 1);
  EXPECT_NO_THROW(space_.Write(fresh, buffer.data(), buffer.size()));
}

TEST_F(HardenedTest, ChargesMoreThanBackingAlloc) {
  const uint64_t t0 = machine_.clock().cycles();
  (void)backing_.Allocate(128).value();
  const uint64_t plain = machine_.clock().cycles() - t0;
  const uint64_t t1 = machine_.clock().cycles();
  (void)hardened_.Allocate(128).value();
  const uint64_t instrumented = machine_.clock().cycles() - t1;
  EXPECT_GT(instrumented, plain);
}

// --- AllocatorRegistry -------------------------------------------------------

TEST_F(AllocTest, RegistryRoutesPerCompartment) {
  AllocatorRegistry registry;
  Allocator& heap0 = registry.Adopt(
      std::make_unique<FreelistHeap>(space_, 0, 1 << 18));
  Allocator& heap1 = registry.Adopt(
      std::make_unique<FreelistHeap>(space_, 1 << 18, 1 << 18));
  registry.SetGlobal(heap0);
  registry.SetForCompartment(1, heap1);
  EXPECT_EQ(&registry.For(0), &heap0);
  EXPECT_EQ(&registry.For(1), &heap1);
  EXPECT_EQ(&registry.For(7), &heap0);
  EXPECT_TRUE(registry.HasDedicated(1));
  EXPECT_FALSE(registry.HasDedicated(0));
}

}  // namespace
}  // namespace flexos
