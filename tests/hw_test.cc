#include <gtest/gtest.h>

#include "hw/clock.h"
#include "hw/machine.h"
#include "hw/pkru.h"
#include "hw/trap.h"

namespace flexos {
namespace {

TEST(Clock, ChargesAndConverts) {
  Clock clock(2'100'000'000);
  clock.Charge(2100);
  EXPECT_EQ(clock.cycles(), 2100u);
  EXPECT_EQ(clock.NowNanos(), 1000u);  // 2100 cycles at 2.1 GHz = 1 us.
}

TEST(Clock, NanosToCyclesRoundsUp) {
  Clock clock(2'100'000'000);
  EXPECT_EQ(clock.NanosToCycles(1), 3u);  // 2.1 cycles -> 3.
  EXPECT_EQ(clock.NanosToCycles(1'000'000'000), 2'100'000'000u);
}

TEST(Clock, AdvanceToNeverGoesBackwards) {
  Clock clock;
  clock.Charge(100);
  clock.AdvanceTo(50);
  EXPECT_EQ(clock.cycles(), 100u);
  clock.AdvanceTo(500);
  EXPECT_EQ(clock.cycles(), 500u);
}

TEST(Clock, LargeCycleCountsDontOverflowNanos) {
  Clock clock(2'100'000'000);
  clock.Charge(2'100'000'000ull * 1000);  // 1000 virtual seconds.
  EXPECT_EQ(clock.NowNanos(), 1'000'000'000'000ull);
}

// CyclesToNanos uses a division-free fixed-point reciprocal (it sits on the
// gate-dispatch record path); pin it to the reference division so the
// fast path stays an exact floor at any frequency, including ones above
// and below 1 GHz and divisible-boundary inputs like 21 cycles at 2.1 GHz.
TEST(Clock, CyclesToNanosMatchesReferenceDivision) {
  for (uint64_t freq :
       {2'100'000'000ull, 1'000'000'000ull, 999'999'937ull, 3'500'000'000ull,
        1'000'000ull}) {
    Clock clock(freq);
    for (uint64_t cycles : std::initializer_list<uint64_t>{
             0, 1, 7, 20, 21, 22, 238, 8051, 123'457, freq - 1, freq,
             freq + 1, 1000 * freq + 12'345}) {
      const uint64_t expected =
          (cycles / freq) * 1'000'000'000ull +
          (cycles % freq) * 1'000'000'000ull / freq;
      EXPECT_EQ(clock.CyclesToNanos(cycles), expected)
          << "cycles=" << cycles << " freq=" << freq;
    }
  }
}

TEST(Pkru, AllowAllAllowsEverything) {
  const Pkru pkru = Pkru::AllowAll();
  for (Pkey key = 0; key < kNumPkeys; ++key) {
    EXPECT_TRUE(pkru.CanRead(key));
    EXPECT_TRUE(pkru.CanWrite(key));
  }
}

TEST(Pkru, DenyAllDeniesEverything) {
  const Pkru pkru = Pkru::DenyAll();
  for (Pkey key = 0; key < kNumPkeys; ++key) {
    EXPECT_FALSE(pkru.CanRead(key));
    EXPECT_FALSE(pkru.CanWrite(key));
  }
}

TEST(Pkru, ReadOnlyGrant) {
  const Pkru pkru =
      Pkru::DenyAll().WithAccess(3, /*allow_read=*/true, /*allow_write=*/false);
  EXPECT_TRUE(pkru.CanRead(3));
  EXPECT_FALSE(pkru.CanWrite(3));
  EXPECT_FALSE(pkru.CanRead(2));
}

TEST(Pkru, RegrantAndRevoke) {
  Pkru pkru = Pkru::AllowAll().WithAccess(5, false, false);
  EXPECT_FALSE(pkru.CanRead(5));
  pkru = pkru.WithAccess(5, true, true);
  EXPECT_TRUE(pkru.CanWrite(5));
}

TEST(Machine, WrpkruChargesAndCounts) {
  Machine machine;
  const uint64_t before = machine.clock().cycles();
  machine.Wrpkru(Pkru::DenyAll());
  EXPECT_EQ(machine.clock().cycles() - before, machine.costs().wrpkru);
  EXPECT_EQ(machine.stats().wrpkru_count, 1u);
  EXPECT_EQ(machine.context().pkru, Pkru::DenyAll());
}

TEST(Machine, VmExitChargesExitEntryAndNotify) {
  Machine machine;
  const uint64_t before = machine.clock().cycles();
  machine.VmExitEnter();
  EXPECT_EQ(machine.clock().cycles() - before,
            2 * machine.costs().vmexit + machine.costs().vm_notify);
  EXPECT_EQ(machine.stats().vmexit_count, 1u);
}

TEST(Machine, MemOpHonorsInstrumentationMultiplier) {
  Machine machine;
  machine.context().mem_cost_multiplier = 1.0;
  const uint64_t t0 = machine.clock().cycles();
  machine.ChargeMemOp(4096);
  const uint64_t plain = machine.clock().cycles() - t0;

  machine.context().mem_cost_multiplier = 4.0;
  const uint64_t t1 = machine.clock().cycles();
  machine.ChargeMemOp(4096);
  const uint64_t instrumented = machine.clock().cycles() - t1;
  EXPECT_EQ(instrumented, plain * 4);
}

TEST(Machine, ComputeIsInstrumentationInsensitive) {
  Machine machine;
  machine.context().mem_cost_multiplier = 10.0;
  const uint64_t t0 = machine.clock().cycles();
  machine.ChargeCompute(100);
  EXPECT_EQ(machine.clock().cycles() - t0, 100u);
}

TEST(ScopedExecContext, RestoresOnExit) {
  Machine machine;
  machine.context().compartment = 1;
  {
    ExecContext other;
    other.compartment = 2;
    ScopedExecContext scope(machine, other);
    EXPECT_EQ(machine.context().compartment, 2);
  }
  EXPECT_EQ(machine.context().compartment, 1);
}

TEST(Trap, RaiseThrowsWithInfo) {
  try {
    RaiseTrap(TrapInfo{.kind = TrapKind::kProtectionFault,
                       .access = AccessKind::kWrite,
                       .guest_addr = 0x1234});
    FAIL() << "RaiseTrap returned";
  } catch (const TrapException& trap) {
    EXPECT_EQ(trap.info().kind, TrapKind::kProtectionFault);
    EXPECT_EQ(trap.info().guest_addr, 0x1234u);
    EXPECT_NE(trap.info().ToString().find("PROTECTION_FAULT"),
              std::string::npos);
  }
}

TEST(Trap, EveryKindHasAName) {
  for (int kind = 0; kind <= static_cast<int>(TrapKind::kUbsanViolation);
       ++kind) {
    EXPECT_NE(TrapKindName(static_cast<TrapKind>(kind)), "UNKNOWN_TRAP");
  }
}

}  // namespace
}  // namespace flexos
