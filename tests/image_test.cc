// Image building and the protection semantics of built images: compartment
// layout, per-compartment allocators, MPK enforcement of cross-compartment
// memory access, shared-region reachability, CFI enforcement, and the
// global-vs-local allocator hardening policy.
#include <gtest/gtest.h>

#include "alloc/hardened_heap.h"
#include "core/image_builder.h"
#include "support/strings.h"

namespace flexos {
namespace {

std::vector<std::string> Libs() {
  return {"app", "net", "sched", "libc", "alloc"};
}

ImageConfig TwoCompartments(IsolationBackend backend) {
  ImageConfig config;
  config.backend = backend;
  config.compartments = {{"net"}, {"app", "sched", "libc", "alloc"}};
  return config;
}

TEST(ImageBuilder, RejectsBadConfigs) {
  Machine machine;
  ImageBuilder builder(machine);
  ImageConfig empty;
  EXPECT_FALSE(builder.Build(empty).ok());

  ImageConfig dup = TwoCompartments(IsolationBackend::kMpkSharedStack);
  dup.compartments[0].push_back("app");  // app in two compartments.
  EXPECT_EQ(builder.Build(dup).status().code(), ErrorCode::kAlreadyExists);

  ImageConfig unknown_hardened = BaselineConfig(Libs());
  unknown_hardened.hardened_libs = {"nosuchlib"};
  EXPECT_EQ(builder.Build(unknown_hardened).status().code(),
            ErrorCode::kNotFound);

  ImageConfig has_platform = BaselineConfig(Libs());
  has_platform.compartments[0].push_back("platform");
  EXPECT_FALSE(builder.Build(has_platform).ok());

  ImageConfig empty_group = BaselineConfig(Libs());
  empty_group.compartments.push_back({});
  EXPECT_FALSE(builder.Build(empty_group).ok());
}

TEST(ImageBuilder, BaselineHasOneCompartmentOneSpace) {
  Machine machine;
  ImageBuilder builder(machine);
  auto image = builder.Build(BaselineConfig(Libs())).value();
  EXPECT_EQ(image->compartment_count(), 1);
  EXPECT_EQ(image->CompartmentOf("app"), 0);
  EXPECT_EQ(image->CompartmentOf("net"), 0);
  EXPECT_EQ(&image->SpaceOf("app"), &image->SpaceOf("net"));
  EXPECT_EQ(&image->AllocatorOf("app"), &image->AllocatorOf("net"));
}

TEST(ImageBuilder, MpkCompartmentsGetDistinctKeysAndHeaps) {
  Machine machine;
  ImageBuilder builder(machine);
  auto image =
      builder.Build(TwoCompartments(IsolationBackend::kMpkSharedStack))
          .value();
  ASSERT_EQ(image->compartment_count(), 2);
  const CompartmentRuntime& net = image->compartment(0);
  const CompartmentRuntime& rest = image->compartment(1);
  EXPECT_NE(net.pkey, rest.pkey);
  EXPECT_NE(net.pkey, 0);  // Key 0 is the shared region.
  EXPECT_NE(net.heap_base, rest.heap_base);
  EXPECT_EQ(&image->SpaceOf("net"), &image->SpaceOf("app"));  // One space.
  EXPECT_NE(&image->AllocatorOf("net"), &image->AllocatorOf("app"));
}

TEST(ImageBuilder, VmBackendGetsSpacePerCompartment) {
  Machine machine;
  ImageBuilder builder(machine);
  auto image =
      builder.Build(TwoCompartments(IsolationBackend::kVmRpc)).value();
  EXPECT_NE(&image->SpaceOf("net"), &image->SpaceOf("app"));
}

TEST(ImageSemantics, MpkCrossCompartmentWriteFaults) {
  Machine machine;
  ImageBuilder builder(machine);
  auto image =
      builder.Build(TwoCompartments(IsolationBackend::kMpkSharedStack))
          .value();
  // Allocate in net's heap, then try to touch it from the app compartment.
  const Gaddr net_buf = image->AllocatorOf("net").Allocate(64).value();
  AddressSpace& space = image->SpaceOf("app");
  uint8_t byte = 1;

  bool trapped = false;
  image->Call(kLibPlatform, "app", [&] {
    try {
      space.Write(net_buf, &byte, 1);
    } catch (const TrapException& trap) {
      trapped = true;
      EXPECT_EQ(trap.info().kind, TrapKind::kProtectionFault);
    }
  });
  EXPECT_TRUE(trapped);

  // The owning compartment can write it fine.
  image->Call(kLibPlatform, "net", [&] {
    EXPECT_NO_THROW(space.Write(net_buf, &byte, 1));
  });
}

TEST(ImageSemantics, SharedRegionWritableFromAllCompartments) {
  Machine machine;
  ImageBuilder builder(machine);
  auto image =
      builder.Build(TwoCompartments(IsolationBackend::kMpkSharedStack))
          .value();
  const Gaddr shared = image->shared_allocator().Allocate(64).value();
  uint8_t byte = 7;
  image->Call(kLibPlatform, "app", [&] {
    EXPECT_NO_THROW(image->SpaceOf("app").Write(shared, &byte, 1));
  });
  image->Call(kLibPlatform, "net", [&] {
    EXPECT_NO_THROW(image->SpaceOf("net").Write(shared, &byte, 1));
  });
}

TEST(ImageSemantics, VmPrivateMemoryUnmappedElsewhere) {
  Machine machine;
  ImageBuilder builder(machine);
  auto image =
      builder.Build(TwoCompartments(IsolationBackend::kVmRpc)).value();
  const Gaddr net_buf = image->AllocatorOf("net").Allocate(64).value();
  // net's heap address is not even mapped in app's VM... but both VMs use
  // the same layout, so the address IS mapped — to app's own private page.
  // Writing through app's space must not affect net's view.
  uint8_t value_a = 0xaa;
  image->SpaceOf("app").Write(net_buf, &value_a, 1);
  uint8_t value_n = 0;
  image->SpaceOf("net").Read(net_buf, &value_n, 1);
  EXPECT_NE(value_n, 0xaa);  // Distinct backing pages.
}

TEST(ImageSemantics, VmSharedRegionAliased) {
  Machine machine;
  ImageBuilder builder(machine);
  auto image =
      builder.Build(TwoCompartments(IsolationBackend::kVmRpc)).value();
  const Gaddr shared = image->shared_allocator().Allocate(64).value();
  const uint32_t value = 0xfeedface;
  image->SpaceOf("app").WriteT<uint32_t>(shared, value);
  EXPECT_EQ(image->SpaceOf("net").ReadT<uint32_t>(shared), value);
}

TEST(ImageSemantics, CrossCallsChargeTheConfiguredGate) {
  Machine machine;
  ImageBuilder builder(machine);
  auto image =
      builder.Build(TwoCompartments(IsolationBackend::kMpkSharedStack))
          .value();
  const uint64_t wrpkru_before = machine.stats().wrpkru_count;
  image->Call("app", "net", [] {});
  EXPECT_EQ(machine.stats().wrpkru_count, wrpkru_before + 2);
  EXPECT_EQ(image->stats().cross_compartment_calls, 1u);

  image->Call("app", "sched", [] {});  // Same compartment: no PKRU write.
  EXPECT_EQ(machine.stats().wrpkru_count, wrpkru_before + 2);
  EXPECT_EQ(image->stats().same_compartment_calls, 1u);
}

TEST(ImageSemantics, HardenedLibGetsInstrumentedContext) {
  Machine machine;
  ImageBuilder builder(machine);
  ImageConfig config = BaselineConfig(Libs());
  config.hardened_libs = {"net"};
  auto image = builder.Build(config).value();
  EXPECT_TRUE(image->IsHardened("net"));
  EXPECT_FALSE(image->IsHardened("app"));
  image->Call("app", "net", [&] {
    EXPECT_GT(machine.context().mem_cost_multiplier, 1.0);
    EXPECT_TRUE(machine.context().shadow_checks);
  });
  image->Call("app", "libc", [&] {
    EXPECT_EQ(machine.context().mem_cost_multiplier, 1.0);
    EXPECT_FALSE(machine.context().shadow_checks);
  });
}

TEST(ImageSemantics, GlobalAllocatorHardenedWhenAnyLibIs) {
  // Paper Fig. 4: with one global allocator, hardening anything makes the
  // whole system pay instrumented malloc.
  Machine machine;
  ImageBuilder builder(machine);
  ImageConfig config = BaselineConfig(Libs());
  config.per_compartment_allocators = false;
  config.hardened_libs = {"net"};
  auto image = builder.Build(config).value();
  // app's allocator IS the hardened global one.
  EXPECT_EQ(&image->AllocatorOf("app"), &image->AllocatorOf("net"));
  EXPECT_NE(dynamic_cast<HardenedHeap*>(&image->AllocatorOf("app")),
            nullptr);
}

TEST(ImageSemantics, LocalAllocatorsConfineTheHardeningTax) {
  Machine machine;
  ImageBuilder builder(machine);
  ImageConfig config = TwoCompartments(IsolationBackend::kMpkSharedStack);
  config.hardened_libs = {"net"};  // net is alone in compartment 0.
  auto image = builder.Build(config).value();
  EXPECT_NE(dynamic_cast<HardenedHeap*>(&image->AllocatorOf("net")),
            nullptr);
  EXPECT_EQ(dynamic_cast<HardenedHeap*>(&image->AllocatorOf("app")),
            nullptr);
}

TEST(ImageSemantics, CfiChecksDeclaredApi) {
  Machine machine;
  ImageBuilder builder(machine);
  ImageConfig config = BaselineConfig(Libs());
  config.cfi_libs = {"sched"};
  config.apis["sched"] = {"thread_add", "thread_rm", "yield"};
  auto image = builder.Build(config).value();

  bool ran = false;
  EXPECT_NO_THROW(
      image->CallNamed("app", "sched", "yield", [&] { ran = true; }));
  EXPECT_TRUE(ran);

  try {
    image->CallNamed("app", "sched", "corrupt_runqueue", [] {});
    FAIL() << "CFI violation not caught";
  } catch (const TrapException& trap) {
    EXPECT_EQ(trap.info().kind, TrapKind::kCfiViolation);
  }
  EXPECT_GE(image->stats().cfi_checks, 2u);
}

TEST(ImageSemantics, DescribeListsCompartments) {
  Machine machine;
  ImageBuilder builder(machine);
  auto image =
      builder.Build(TwoCompartments(IsolationBackend::kVmRpc)).value();
  const std::string description = image->Describe();
  EXPECT_NE(description.find("vm-rpc"), std::string::npos);
  EXPECT_NE(description.find("net"), std::string::npos);
}

TEST(ImageSemantics, ApiContractsRunOnlyAcrossTrustDomains) {
  // Paper §5: "if component A is together with component B in the same
  // trust domain, then checks are not necessary, but they are when
  // component C (in another domain) calls component B."
  Machine machine;
  ImageBuilder builder(machine);
  auto image =
      builder.Build(TwoCompartments(IsolationBackend::kMpkSharedStack))
          .value();
  bool legal = true;
  image->RegisterApiContract("net", "listen", [&legal] { return legal; },
                             "port must be unbound");

  // Same compartment as net? No: app is in the other compartment, so the
  // check runs.
  image->CallNamed("app", "net", "listen", [] {});
  EXPECT_EQ(image->contract_checks_run(), 1u);
  EXPECT_EQ(image->contract_checks_skipped(), 0u);

  // sched shares app's compartment; net is alone, so sched -> net also
  // crosses. But net -> net-internal calls would skip. Emulate a
  // same-domain call using two libs of compartment 1.
  image->RegisterApiContract("libc", "memcpy", [] { return false; },
                             "never called legally");
  // app and libc share compartment 1: the (failing!) check is skipped.
  EXPECT_NO_THROW(image->CallNamed("app", "libc", "memcpy", [] {}));
  EXPECT_EQ(image->contract_checks_skipped(), 1u);

  // Violation across domains traps.
  legal = false;
  try {
    image->CallNamed("app", "net", "listen", [] {});
    FAIL() << "contract violation not caught";
  } catch (const TrapException& trap) {
    EXPECT_EQ(trap.info().kind, TrapKind::kContractViolation);
    EXPECT_NE(trap.info().detail.find("port must be unbound"),
              std::string::npos);
  }
}

TEST(ImageSemantics, SwitchedStackCompartmentsGetGuardedStacks) {
  Machine machine;
  ImageBuilder builder(machine);
  auto image =
      builder.Build(TwoCompartments(IsolationBackend::kMpkSwitchedStack))
          .value();
  const CompartmentRuntime& net = image->compartment(0);
  ASSERT_NE(net.stack_base, 0u);
  ASSERT_GT(net.stack_bytes, 0u);
  // The stack is tagged with the compartment's key...
  EXPECT_EQ(net.space->KeyOf(net.stack_base).value(), net.pkey);
  // ...usable from inside the compartment...
  image->Call(kLibPlatform, "net", [&] {
    uint8_t byte = 1;
    EXPECT_NO_THROW(net.space->Write(net.stack_base, &byte, 1));
  });
  // ...not from another one...
  image->Call(kLibPlatform, "app", [&] {
    uint8_t byte = 1;
    EXPECT_THROW(net.space->Write(net.stack_base, &byte, 1), TrapException);
  });
  // ...and running past the bottom hits the guard page.
  try {
    uint8_t byte = 0;
    net.space->Read(net.stack_base - 1, &byte, 1);
    FAIL() << "guard page not armed";
  } catch (const TrapException& trap) {
    EXPECT_EQ(trap.info().kind, TrapKind::kStackOverflow);
  }
}

TEST(ImageSemantics, SharedStackBackendHasNoPrivateStacks) {
  Machine machine;
  ImageBuilder builder(machine);
  auto image =
      builder.Build(TwoCompartments(IsolationBackend::kMpkSharedStack))
          .value();
  EXPECT_EQ(image->compartment(0).stack_base, 0u);
}

TEST(ImageSemantics, VmReplicatedLibsStayLocal) {
  // Calls to per-VM-replicated libraries must not pay VM exits.
  Machine machine;
  ImageBuilder builder(machine);
  ImageConfig config;
  config.backend = IsolationBackend::kVmRpc;
  config.compartments = {{"net"}, {"app", "sched", "libc", "alloc"}};
  auto image = builder.Build(config).value();

  const uint64_t exits_before = machine.stats().vmexit_count;
  image->Call("net", "libc", [] {});   // Replicated: local.
  image->Call("net", "sched", [] {});  // Replicated: local.
  EXPECT_EQ(machine.stats().vmexit_count, exits_before);
  image->Call("app", "net", [] {});  // Service boundary: real RPC.
  EXPECT_GT(machine.stats().vmexit_count, exits_before);
}

TEST(ImageSemantics, LeafCallKeepsCallerDomainWithTargetInstrumentation) {
  Machine machine;
  ImageBuilder builder(machine);
  ImageConfig config = TwoCompartments(IsolationBackend::kMpkSharedStack);
  config.hardened_libs = {"libc"};
  auto image = builder.Build(config).value();

  image->Call(kLibPlatform, "net", [&] {
    const Pkru net_pkru = machine.context().pkru;
    image->CallLeaf("net", "libc", [&] {
      // Protection domain unchanged (still net's PKRU)...
      EXPECT_EQ(machine.context().pkru, net_pkru);
      // ...but libc's instrumentation applies.
      EXPECT_TRUE(machine.context().shadow_checks);
      EXPECT_GT(machine.context().mem_cost_multiplier, 1.0);
    });
    // Restored on return.
    EXPECT_FALSE(machine.context().shadow_checks);
  });
  EXPECT_GT(image->stats().leaf_calls, 0u);
}

TEST(ImageBuilder, TooManyCompartmentsRejected) {
  Machine machine;
  ImageBuilder builder(machine);
  ImageConfig config;
  config.backend = IsolationBackend::kMpkSharedStack;
  for (int i = 0; i < 16; ++i) {
    config.compartments.push_back({StrFormat("lib%d", i)});
  }
  config.heap_bytes_per_compartment = 1 << 20;
  EXPECT_FALSE(builder.Build(config).ok());
}

}  // namespace
}  // namespace flexos
