// NetStack facade behavior: frame dispatch, parse-error accounting, timer
// aggregation, and the testbed idle loop's virtual-time advancement.
#include <gtest/gtest.h>

#include "apps/testbed.h"

namespace flexos {
namespace {

TestbedConfig Baseline() {
  TestbedConfig config;
  config.image = BaselineConfig(DefaultLibs());
  return config;
}

TEST(NetStackPoll, NoTrafficNoProgress) {
  Testbed bed(Baseline());
  EXPECT_FALSE(bed.stack().Poll());
  EXPECT_EQ(bed.stack().stats().frames_polled, 0u);
}

TEST(NetStackPoll, GarbageFramesCountedAsParseErrors) {
  Testbed bed(Baseline());
  bed.nic().DeliverFrame(std::vector<uint8_t>(10, 0xab));   // Too short.
  bed.nic().DeliverFrame(std::vector<uint8_t>(100, 0xcd));  // Bad ethertype.
  EXPECT_TRUE(bed.stack().Poll());
  EXPECT_EQ(bed.stack().stats().frames_polled, 2u);
  EXPECT_EQ(bed.stack().stats().parse_errors, 2u);
}

TEST(NetStackPoll, UnhandledProtocolCounted) {
  Testbed bed(Baseline());
  // A valid UDP datagram to a port nobody bound: swallowed by the UDP
  // engine (counts as handled), so craft a TCP segment to a port with no
  // listener instead — also swallowed. Use a UDP frame: handled. The
  // "unhandled" counter is for protocols neither engine accepts, which
  // ParseFrame already filters; verify it stays zero on normal traffic.
  bed.link().SendFromB(BuildUdpFrame(
      MacAddr{{2, 0, 0, 0, 0, 0xbb}}, MacAddr{{2, 0, 0, 0, 0, 0xaa}},
      MakeIpv4(10, 0, 0, 2), MakeIpv4(10, 0, 0, 1), 1, 2, nullptr, 0));
  bed.machine().clock().AdvanceTo(
      bed.link().NextArrivalCycles().value_or(0));
  bed.link().DeliverDue();
  EXPECT_TRUE(bed.stack().Poll());
  EXPECT_EQ(bed.stack().stats().unhandled_frames, 0u);
}

TEST(NetStackPoll, PollRunsInNetContext) {
  // Hardening the netstack must instrument Poll's processing.
  TestbedConfig config = Baseline();
  config.image.hardened_libs = {std::string(kLibNet)};
  Testbed bed(config);
  // An inbound garbage frame still charges rx processing in net context;
  // just verify Poll doesn't disturb the (platform) context it runs under.
  bed.nic().DeliverFrame(std::vector<uint8_t>(100, 0xcd));
  const ExecContext before = bed.machine().context();
  bed.stack().Poll();
  EXPECT_EQ(bed.machine().context().compartment, before.compartment);
  EXPECT_EQ(bed.machine().context().mem_cost_multiplier,
            before.mem_cost_multiplier);
}

TEST(NetStackTimers, AggregateTcpAndArpDeadlines) {
  Testbed bed(Baseline());
  EXPECT_FALSE(bed.stack().NextEventCycles().has_value());
  // Kick off an ARP resolution from a guest thread, then inspect timers.
  bed.SpawnApp("resolver", [&] {
    bed.image().Call(kLibApp, kLibNet, [&] {
      (void)bed.stack().TcpConnect(MakeIpv4(10, 0, 0, 42), 80);
    });
  });
  // Run to completion: resolution fails after retries, but while pending
  // the idle loop must keep finding deadlines to advance to (otherwise
  // this deadlocks and Run returns kTimedOut).
  const Status status = bed.Run();
  EXPECT_TRUE(status.ok()) << status.ToString();
  EXPECT_GT(bed.stack().arp().stats().requests_sent, 1u);
}

TEST(TestbedIdle, AdvancesVirtualTimeAcrossQuietPeriods) {
  // A thread sleeps on a semaphore only a delayed frame can release; the
  // idle handler must jump the clock to the frame's arrival.
  TestbedConfig config = Baseline();
  config.link.latency_ns = 2'000'000;  // 2 ms one-way.
  Testbed bed(config);

  uint64_t woke_at_cycles = 0;
  bed.SpawnApp("waiter", [&] {
    Image& image = bed.image();
    UdpEngine& udp = bed.stack().udp();
    const Gaddr buffer = bed.AllocShared(128);
    int sock = 0;
    image.Call(kLibApp, kLibNet, [&] { sock = udp.Open(9000).value(); });
    image.Call(kLibApp, kLibNet, [&] {
      ASSERT_TRUE(udp.RecvFrom(sock, buffer, 128).ok());
    });
    woke_at_cycles = bed.machine().clock().cycles();
  });
  const uint8_t byte = 1;
  bed.link().SendFromB(BuildUdpFrame(
      MacAddr{{2, 0, 0, 0, 0, 0xbb}}, MacAddr{{2, 0, 0, 0, 0, 0xaa}},
      MakeIpv4(10, 0, 0, 2), MakeIpv4(10, 0, 0, 1), 1234, 9000, &byte, 1));
  const Status status = bed.Run();
  EXPECT_TRUE(status.ok()) << status.ToString();
  // The wakeup happened no earlier than the 2 ms propagation delay.
  EXPECT_GE(woke_at_cycles, bed.machine().clock().NanosToCycles(2'000'000));
}

TEST(TestbedIdle, DeadlockedThreadsReportTimedOut) {
  Testbed bed(Baseline());
  bed.SpawnApp("stuck", [&] {
    Image& image = bed.image();
    TcpEngine& tcp = bed.stack().tcp();
    const Gaddr buffer = bed.AllocShared(64);
    int listener = 0, conn = 0;
    image.Call(kLibApp, kLibNet,
               [&] { listener = tcp.Listen(1000, 1).value(); });
    // Accept blocks forever: nobody will ever connect.
    image.Call(kLibApp, kLibNet, [&] { conn = tcp.Accept(listener).value(); });
    (void)buffer;
    (void)conn;
  });
  const Status status = bed.Run();
  EXPECT_EQ(status.code(), ErrorCode::kTimedOut);
}

TEST(TestbedShared, SharedAllocationsVisibleEverywhere) {
  TestbedConfig config;
  config.image.backend = IsolationBackend::kVmRpc;
  config.image.compartments = {
      {std::string(kLibNet)},
      {std::string(kLibApp), std::string(kLibSched), std::string(kLibLibc),
       std::string(kLibAlloc)}};
  Testbed bed(config);
  const Gaddr shared = bed.AllocShared(64);
  bed.image().SpaceOf(kLibApp).WriteT<uint32_t>(shared, 0xabcd1234);
  EXPECT_EQ(bed.image().SpaceOf(kLibNet).ReadT<uint32_t>(shared),
            0xabcd1234u);
}

}  // namespace
}  // namespace flexos
