// Unit tests for the scheduler's building blocks — Thread state and
// WaitQueue — separate from the scheduler-level behavior in sched_test.cc.
#include <gtest/gtest.h>

#include "sched/coop_scheduler.h"
#include "sched/wait_queue.h"

namespace flexos {
namespace {

TEST(WaitQueue, StartsEmptyWithDefaultName) {
  WaitQueue queue;
  EXPECT_EQ(queue.name(), "waitq");
  EXPECT_TRUE(queue.empty());
  EXPECT_EQ(queue.size(), 0u);
  EXPECT_EQ(queue.Dequeue(), nullptr);
}

TEST(WaitQueue, FifoAcrossThreeWaiters) {
  WaitQueue queue("q");
  Thread a(1, "a", [] {});
  Thread b(2, "b", [] {});
  Thread c(3, "c", [] {});
  queue.Enqueue(&a);
  queue.Enqueue(&b);
  queue.Enqueue(&c);
  EXPECT_EQ(queue.size(), 3u);
  EXPECT_EQ(queue.Dequeue(), &a);
  EXPECT_EQ(queue.Dequeue(), &b);
  EXPECT_EQ(queue.Dequeue(), &c);
  EXPECT_TRUE(queue.empty());
}

TEST(WaitQueue, RemoveMiddlePreservesOrder) {
  WaitQueue queue("q");
  Thread a(1, "a", [] {});
  Thread b(2, "b", [] {});
  Thread c(3, "c", [] {});
  queue.Enqueue(&a);
  queue.Enqueue(&b);
  queue.Enqueue(&c);
  queue.Remove(&b);
  EXPECT_FALSE(queue.Contains(&b));
  EXPECT_EQ(queue.size(), 2u);
  EXPECT_EQ(queue.Dequeue(), &a);
  EXPECT_EQ(queue.Dequeue(), &c);
}

TEST(WaitQueue, ContainsTracksMembership) {
  WaitQueue queue("q");
  Thread a(1, "a", [] {});
  EXPECT_FALSE(queue.Contains(&a));
  queue.Enqueue(&a);
  EXPECT_TRUE(queue.Contains(&a));
  queue.Dequeue();
  EXPECT_FALSE(queue.Contains(&a));
}

TEST(WaitQueue, ReusableAfterDrain) {
  WaitQueue queue("q");
  Thread a(1, "a", [] {});
  queue.Enqueue(&a);
  EXPECT_EQ(queue.Dequeue(), &a);
  queue.Enqueue(&a);  // Node relinks cleanly after a full drain.
  EXPECT_EQ(queue.size(), 1u);
  EXPECT_EQ(queue.Dequeue(), &a);
}

TEST(Thread, FreshThreadDefaults) {
  Thread thread(7, "worker", [] {});
  EXPECT_EQ(thread.id(), 7u);
  EXPECT_EQ(thread.name(), "worker");
  EXPECT_EQ(thread.state(), ThreadState::kReady);
  EXPECT_FALSE(thread.queued());
  EXPECT_FALSE(thread.fatal_trap().has_value());
  // Unpinned until Spawn says otherwise; run queue 0 is the boot vCPU.
  EXPECT_EQ(thread.affinity(), -1);
  EXPECT_EQ(thread.home_vcpu(), 0);
}

TEST(Thread, WaitQueueLinkageDoesNotMarkQueued) {
  // queued() reports *run*-queue membership; sitting on a wait queue uses
  // the separate wait_node_ linkage.
  WaitQueue queue("q");
  Thread thread(1, "t", [] {});
  queue.Enqueue(&thread);
  EXPECT_FALSE(thread.queued());
  queue.Dequeue();
}

TEST(Thread, StateNamesCoverAllStates) {
  EXPECT_EQ(ThreadStateName(ThreadState::kReady), "ready");
  EXPECT_EQ(ThreadStateName(ThreadState::kRunning), "running");
  EXPECT_EQ(ThreadStateName(ThreadState::kBlocked), "blocked");
  EXPECT_EQ(ThreadStateName(ThreadState::kExited), "exited");
}

TEST(Thread, SpawnQueuedAndLifecycle) {
  Machine machine;
  CoopScheduler sched(machine);
  Thread* thread = sched.Spawn("t", [] {}).value();
  EXPECT_TRUE(thread->queued());
  EXPECT_EQ(thread->state(), ThreadState::kReady);
  EXPECT_TRUE(sched.Run().ok());
  EXPECT_FALSE(thread->queued());
  EXPECT_EQ(thread->state(), ThreadState::kExited);
}

TEST(Thread, SpawnAffinityPinsToVcpu) {
  Machine machine;
  machine.SetVCpuCount(2);
  CoopScheduler sched(machine);
  Thread* pinned = sched.Spawn("pinned", [] {}, /*affinity=*/1).value();
  EXPECT_EQ(pinned->affinity(), 1);
  EXPECT_EQ(pinned->home_vcpu(), 1);
  EXPECT_TRUE(sched.Run().ok());
}

TEST(Thread, SpawnAffinityBeyondVcpuCountUnpins) {
  // A pin outside the booted vCPU range degrades to unpinned rather than
  // parking the thread on a queue no vCPU drains.
  Machine machine;  // 1 vCPU.
  CoopScheduler sched(machine);
  bool ran = false;
  Thread* thread = sched.Spawn("t", [&] { ran = true; }, 3).value();
  EXPECT_EQ(thread->affinity(), -1);
  EXPECT_EQ(thread->home_vcpu(), 0);
  EXPECT_TRUE(sched.Run().ok());
  EXPECT_TRUE(ran);
}

}  // namespace
}  // namespace flexos
