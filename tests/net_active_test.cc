// Guest-initiated networking: ARP resolution (with retries under loss),
// active TCP open against a remote listener, connection refusal paths, and
// ICMP echo responses.
#include <gtest/gtest.h>

#include <cstring>

#include "apps/testbed.h"

namespace flexos {
namespace {

// A remote server app that echoes everything it receives and never
// initiates data of its own.
class EchoRemoteServer final : public RemoteApp {
 public:
  size_t ProduceData(uint8_t* out, size_t max) override {
    const size_t n = std::min(max, pending_.size());
    std::memcpy(out, pending_.data(), n);
    pending_.erase(0, n);
    return n;
  }
  bool Finished() const override { return false; }  // Guest closes first.
  void OnReceive(const uint8_t* data, size_t len) override {
    pending_.append(reinterpret_cast<const char*>(data), len);
    total_received_ += len;
  }
  uint64_t total_received() const { return total_received_; }

 private:
  std::string pending_;
  uint64_t total_received_ = 0;
};

TEST(ActiveOpen, GuestConnectsViaArpAndExchangesData) {
  TestbedConfig config;
  config.image = BaselineConfig(DefaultLibs());
  Testbed bed(config);

  EchoRemoteServer server_app;
  RemoteTcpConfig peer_config;
  peer_config.local_port = 7777;  // The remote listener's port.
  RemoteTcpPeer server(bed.machine(), bed.link(), peer_config, server_app);
  server.Listen();
  bed.AddPeer(&server);

  std::string echoed;
  bed.SpawnApp("client", [&] {
    Image& image = bed.image();
    NetStack& stack = bed.stack();
    AddressSpace& space = image.SpaceOf(kLibApp);
    const Gaddr buffer = bed.AllocShared(4096);

    int conn = -1;
    image.Call(kLibApp, kLibNet, [&] {
      Result<int> r = stack.TcpConnect(MakeIpv4(10, 0, 0, 2), 7777);
      ASSERT_TRUE(r.ok()) << r.status().ToString();
      conn = r.value();
    });
    ASSERT_GE(conn, 0);

    const std::string message = "hello from inside the unikernel";
    space.WriteUnchecked(buffer, message.data(), message.size());
    image.Call(kLibApp, kLibNet, [&] {
      ASSERT_TRUE(stack.tcp().Send(conn, buffer, message.size()).ok());
    });
    // Read back the echo.
    while (echoed.size() < message.size()) {
      uint64_t n = 0;
      image.Call(kLibApp, kLibNet, [&] {
        n = stack.tcp().Recv(conn, buffer, 4096).value();
      });
      ASSERT_GT(n, 0u);
      std::string chunk(n, '\0');
      space.ReadUnchecked(buffer, chunk.data(), n);
      echoed += chunk;
    }
    image.Call(kLibApp, kLibNet, [&] { (void)stack.tcp().Close(conn); });
  });

  const Status status = bed.Run();
  EXPECT_TRUE(status.ok()) << status.ToString();
  EXPECT_EQ(echoed, "hello from inside the unikernel");
  EXPECT_EQ(server_app.total_received(), echoed.size());
  // ARP ran: one request out, one reply learned.
  EXPECT_GE(bed.stack().arp().stats().requests_sent, 1u);
  EXPECT_TRUE(bed.stack().arp().Lookup(MakeIpv4(10, 0, 0, 2)).has_value());
}

TEST(ActiveOpen, SurvivesLossDuringHandshakeAndData) {
  TestbedConfig config;
  config.image = BaselineConfig(DefaultLibs());
  config.link.loss_probability = 0.08;
  config.link.seed = 77;
  Testbed bed(config);

  EchoRemoteServer server_app;
  RemoteTcpConfig peer_config;
  peer_config.local_port = 7777;
  RemoteTcpPeer server(bed.machine(), bed.link(), peer_config, server_app);
  server.Listen();
  bed.AddPeer(&server);

  uint64_t received = 0;
  bed.SpawnApp("client", [&] {
    Image& image = bed.image();
    NetStack& stack = bed.stack();
    const Gaddr buffer = bed.AllocShared(4096);
    int conn = -1;
    image.Call(kLibApp, kLibNet, [&] {
      Result<int> r = stack.TcpConnect(MakeIpv4(10, 0, 0, 2), 7777);
      ASSERT_TRUE(r.ok()) << r.status().ToString();
      conn = r.value();
    });
    image.SpaceOf(kLibApp).Fill(buffer, 'x', 4096);
    for (int i = 0; i < 4; ++i) {
      image.Call(kLibApp, kLibNet, [&] {
        ASSERT_TRUE(stack.tcp().Send(conn, buffer, 4096).ok());
      });
    }
    while (received < 4 * 4096) {
      uint64_t n = 0;
      image.Call(kLibApp, kLibNet, [&] {
        n = stack.tcp().Recv(conn, buffer, 4096).value();
      });
      ASSERT_GT(n, 0u);
      received += n;
    }
    image.Call(kLibApp, kLibNet, [&] { (void)stack.tcp().Close(conn); });
  });
  const Status status = bed.Run();
  EXPECT_TRUE(status.ok()) << status.ToString();
  EXPECT_EQ(received, 4u * 4096);
}

TEST(ActiveOpen, UnresolvableAddressFailsCleanly) {
  TestbedConfig config;
  config.image = BaselineConfig(DefaultLibs());
  Testbed bed(config);
  // No peer attached: ARP requests go unanswered.
  Status connect_status = Status::Ok();
  bed.SpawnApp("client", [&] {
    bed.image().Call(kLibApp, kLibNet, [&] {
      Result<int> r =
          bed.stack().TcpConnect(MakeIpv4(10, 0, 0, 99), 7777);
      connect_status = r.status();
    });
  });
  const Status status = bed.Run();
  EXPECT_TRUE(status.ok()) << status.ToString();
  EXPECT_EQ(connect_status.code(), ErrorCode::kUnavailable);
  EXPECT_GE(bed.stack().arp().stats().resolution_failures, 1u);
  // Retries happened.
  EXPECT_GT(bed.stack().arp().stats().requests_sent, 1u);
}

TEST(ActiveOpen, StaticArpEntrySkipsResolution) {
  TestbedConfig config;
  config.image = BaselineConfig(DefaultLibs());
  Testbed bed(config);
  EchoRemoteServer server_app;
  RemoteTcpConfig peer_config;
  peer_config.local_port = 7777;
  RemoteTcpPeer server(bed.machine(), bed.link(), peer_config, server_app);
  server.Listen();
  bed.AddPeer(&server);
  bed.stack().arp().Insert(MakeIpv4(10, 0, 0, 2), peer_config.mac);

  bool connected = false;
  bed.SpawnApp("client", [&] {
    bed.image().Call(kLibApp, kLibNet, [&] {
      Result<int> r = bed.stack().TcpConnect(MakeIpv4(10, 0, 0, 2), 7777);
      ASSERT_TRUE(r.ok()) << r.status().ToString();
      connected = true;
      (void)bed.stack().tcp().Close(r.value());
    });
  });
  EXPECT_TRUE(bed.Run().ok());
  EXPECT_TRUE(connected);
  EXPECT_EQ(bed.stack().arp().stats().requests_sent, 0u);
}

// --- ICMP ---------------------------------------------------------------------

class PingCollector final : public LinkEndpoint {
 public:
  void DeliverFrame(std::vector<uint8_t> frame) override {
    Result<ParsedFrame> parsed = ParseFrame(frame);
    if (parsed.ok() && parsed->icmp.has_value() &&
        parsed->icmp->type == kIcmpEchoReply) {
      replies.push_back(parsed.value());
    }
  }
  std::vector<ParsedFrame> replies;
};

TEST(Icmp, GuestAnswersEchoRequests) {
  TestbedConfig config;
  config.image = BaselineConfig(DefaultLibs());
  Testbed bed(config);
  PingCollector collector;
  bed.link().AttachB(&collector);

  const std::string payload = "ping payload 0123456789";
  for (uint16_t seq = 1; seq <= 3; ++seq) {
    IcmpEcho echo;
    echo.type = kIcmpEchoRequest;
    echo.id = 0x77;
    echo.seq = seq;
    bed.link().SendFromB(BuildIcmpEchoFrame(
        MacAddr{{2, 0, 0, 0, 0, 0xbb}}, MacAddr{{2, 0, 0, 0, 0, 0xaa}},
        MakeIpv4(10, 0, 0, 2), MakeIpv4(10, 0, 0, 1), echo,
        reinterpret_cast<const uint8_t*>(payload.data()), payload.size()));
  }
  // No guest threads: pump the platform manually until quiescent.
  for (int i = 0; i < 100 && collector.replies.size() < 3; ++i) {
    bed.link().DeliverDue();
    bed.stack().Poll();
    const std::optional<uint64_t> next = bed.link().NextArrivalCycles();
    if (next.has_value()) {
      bed.machine().clock().AdvanceTo(*next);
    }
  }
  ASSERT_EQ(collector.replies.size(), 3u);
  for (size_t i = 0; i < 3; ++i) {
    const ParsedFrame& reply = collector.replies[i];
    EXPECT_EQ(reply.icmp->id, 0x77);
    EXPECT_EQ(reply.icmp->seq, static_cast<uint16_t>(i + 1));
    EXPECT_EQ(std::string(reply.payload.begin(), reply.payload.end()),
              payload);
    EXPECT_EQ(reply.ip.src, MakeIpv4(10, 0, 0, 1));
  }
  EXPECT_EQ(bed.stack().stats().icmp_echoes_answered, 3u);
}

TEST(Icmp, IgnoresEchoForOtherAddresses) {
  TestbedConfig config;
  config.image = BaselineConfig(DefaultLibs());
  Testbed bed(config);
  PingCollector collector;
  bed.link().AttachB(&collector);
  IcmpEcho echo;
  echo.type = kIcmpEchoRequest;
  bed.link().SendFromB(BuildIcmpEchoFrame(
      MacAddr{{2, 0, 0, 0, 0, 0xbb}}, MacAddr{{2, 0, 0, 0, 0, 0xaa}},
      MakeIpv4(10, 0, 0, 2), MakeIpv4(10, 0, 0, 55), echo, nullptr, 0));
  for (int i = 0; i < 20; ++i) {
    bed.link().DeliverDue();
    bed.stack().Poll();
    const std::optional<uint64_t> next = bed.link().NextArrivalCycles();
    if (next.has_value()) {
      bed.machine().clock().AdvanceTo(*next);
    }
  }
  EXPECT_TRUE(collector.replies.empty());
  EXPECT_EQ(bed.stack().stats().icmp_echoes_answered, 0u);
}

// --- ARP wire format -----------------------------------------------------------

TEST(ArpWire, RoundTrip) {
  ArpPacket arp;
  arp.op = kArpOpReply;
  arp.sender_mac = MacAddr{{1, 2, 3, 4, 5, 6}};
  arp.sender_ip = MakeIpv4(10, 0, 0, 2);
  arp.target_mac = MacAddr{{6, 5, 4, 3, 2, 1}};
  arp.target_ip = MakeIpv4(10, 0, 0, 1);
  const auto frame =
      BuildArpFrame(arp.sender_mac, arp.target_mac, arp);
  Result<ParsedFrame> parsed = ParseFrame(frame);
  ASSERT_TRUE(parsed.ok()) << parsed.status().ToString();
  ASSERT_TRUE(parsed->arp.has_value());
  EXPECT_EQ(parsed->arp->op, kArpOpReply);
  EXPECT_EQ(parsed->arp->sender_ip, arp.sender_ip);
  EXPECT_EQ(parsed->arp->target_ip, arp.target_ip);
  EXPECT_EQ(parsed->arp->sender_mac, arp.sender_mac);
}

TEST(IcmpWire, ChecksumValidated) {
  IcmpEcho echo;
  echo.id = 9;
  echo.seq = 3;
  const uint8_t payload[] = {1, 2, 3, 4, 5};
  auto frame = BuildIcmpEchoFrame(MacAddr{}, MacAddr{}, 1, 2, echo, payload,
                                  sizeof(payload));
  ASSERT_TRUE(ParseFrame(frame).ok());
  frame.back() ^= 0xff;  // Corrupt the payload.
  EXPECT_FALSE(ParseFrame(frame).ok());
}

}  // namespace
}  // namespace flexos
