#include <gtest/gtest.h>

#include "core/gate.h"
#include "core/mpk_gate.h"
#include "core/vm_gate.h"

namespace flexos {
namespace {

class GateTest : public ::testing::Test {
 protected:
  Machine machine_;
  ExecContext target_ = [] {
    ExecContext ctx;
    ctx.compartment = 1;
    ctx.pkru = Pkru::DenyAll().WithAccess(1, true, true);
    return ctx;
  }();
};

TEST_F(GateTest, DirectGateChargesNearCallOnly) {
  DirectGate gate;
  const uint64_t before = machine_.clock().cycles();
  bool ran = false;
  gate.Cross(machine_, GateCrossing{.target_context = &target_},
             [&] { ran = true; });
  EXPECT_TRUE(ran);
  EXPECT_EQ(machine_.clock().cycles() - before,
            machine_.costs().direct_call);
  EXPECT_EQ(machine_.stats().wrpkru_count, 0u);
}

TEST_F(GateTest, DirectGateInstallsAndRestoresContext) {
  DirectGate gate;
  machine_.context().compartment = 0;
  gate.Cross(machine_, GateCrossing{.target_context = &target_}, [&] {
    EXPECT_EQ(machine_.context().compartment, 1);
  });
  EXPECT_EQ(machine_.context().compartment, 0);
}

TEST_F(GateTest, MpkSharedStackWritesPkruTwice) {
  MpkSharedStackGate gate;
  const uint64_t before = machine_.clock().cycles();
  gate.Cross(machine_, GateCrossing{.target_context = &target_}, [&] {
    EXPECT_EQ(machine_.context().pkru, target_.pkru);
  });
  EXPECT_EQ(machine_.stats().wrpkru_count, 2u);
  EXPECT_EQ(machine_.clock().cycles() - before,
            2 * machine_.costs().wrpkru + 2 * machine_.costs().register_clear);
  EXPECT_EQ(machine_.context().pkru, Pkru::AllowAll());  // Restored.
}

TEST_F(GateTest, SwitchedStackCostsMoreAndScalesWithArgs) {
  MpkSharedStackGate shared;
  MpkSwitchedStackGate switched;

  const uint64_t t0 = machine_.clock().cycles();
  shared.Cross(machine_, GateCrossing{.target_context = &target_}, [] {});
  const uint64_t shared_cost = machine_.clock().cycles() - t0;

  const uint64_t t1 = machine_.clock().cycles();
  switched.Cross(machine_,
                 GateCrossing{.target_context = &target_, .arg_bytes = 64},
                 [] {});
  const uint64_t switched_cost = machine_.clock().cycles() - t1;
  EXPECT_GT(switched_cost, shared_cost);

  const uint64_t t2 = machine_.clock().cycles();
  switched.Cross(
      machine_,
      GateCrossing{.target_context = &target_, .arg_bytes = 64 * 1024},
      [] {});
  const uint64_t big_args_cost = machine_.clock().cycles() - t2;
  EXPECT_GT(big_args_cost, switched_cost);
}

TEST_F(GateTest, VmRpcIsTheMostExpensive) {
  MpkSwitchedStackGate switched;
  VmRpcGate vm;
  const GateCrossing crossing{
      .target_context = &target_, .arg_bytes = 64, .ret_bytes = 16};

  const uint64_t t0 = machine_.clock().cycles();
  switched.Cross(machine_, crossing, [] {});
  const uint64_t switched_cost = machine_.clock().cycles() - t0;

  const uint64_t t1 = machine_.clock().cycles();
  vm.Cross(machine_, crossing, [] {});
  const uint64_t vm_cost = machine_.clock().cycles() - t1;

  EXPECT_GT(vm_cost, 4 * switched_cost);
  EXPECT_EQ(machine_.stats().vmexit_count, 2u);  // Request + response.
}

TEST_F(GateTest, GateOrderingMatchesPaper) {
  // direct < mpk-shared < mpk-switched < vm-rpc.
  DirectGate direct;
  MpkSharedStackGate shared;
  MpkSwitchedStackGate switched;
  VmRpcGate vm;
  const GateCrossing crossing{
      .target_context = &target_, .arg_bytes = 64, .ret_bytes = 16};

  auto cost_of = [&](Gate& gate) {
    const uint64_t before = machine_.clock().cycles();
    gate.Cross(machine_, crossing, [] {});
    return machine_.clock().cycles() - before;
  };
  const uint64_t c_direct = cost_of(direct);
  const uint64_t c_shared = cost_of(shared);
  const uint64_t c_switched = cost_of(switched);
  const uint64_t c_vm = cost_of(vm);
  EXPECT_LT(c_direct, c_shared);
  EXPECT_LT(c_shared, c_switched);
  EXPECT_LT(c_switched, c_vm);
}

TEST_F(GateTest, NestedCrossingsRestoreInOrder) {
  MpkSharedStackGate gate;
  ExecContext inner;
  inner.compartment = 2;
  inner.pkru = Pkru::DenyAll().WithAccess(2, true, true);
  gate.Cross(machine_, GateCrossing{.target_context = &target_}, [&] {
    EXPECT_EQ(machine_.context().compartment, 1);
    gate.Cross(machine_, GateCrossing{.target_context = &inner}, [&] {
      EXPECT_EQ(machine_.context().compartment, 2);
    });
    EXPECT_EQ(machine_.context().compartment, 1);
    EXPECT_EQ(machine_.context().pkru, target_.pkru);
  });
  EXPECT_EQ(machine_.context().compartment, -1);
}

TEST(GateNames, AllKindsNamed) {
  EXPECT_EQ(GateKindName(GateKind::kDirect), "direct");
  EXPECT_EQ(GateKindName(GateKind::kMpkSharedStack), "mpk-shared-stack");
  EXPECT_EQ(GateKindName(GateKind::kMpkSwitchedStack), "mpk-switched-stack");
  EXPECT_EQ(GateKindName(GateKind::kVmRpc), "vm-rpc");
}

}  // namespace
}  // namespace flexos
