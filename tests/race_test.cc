// flexrace (DESIGN.md §13): the happens-before race validator. Covers the
// detector's vector-clock semantics in isolation, the machine-level probe
// that turns an unordered pair into a kDataRace trap, end-to-end seeded
// races and gate-synchronized non-races on a 2-vCPU testbed, the
// zero-perturbation guarantee (validator on == validator off, cycle for
// cycle), and offline trace replay reaching the live verdict.
#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "analysis/race_replay.h"
#include "apps/testbed.h"
#include "obs/export.h"
#include "obs/race.h"
#include "sched/coop_scheduler.h"

namespace flexos {
namespace {

// --- Detector semantics ------------------------------------------------------

TEST(RaceDetector, CrossLaneWriteWritePairRaces) {
  obs::RaceDetector det;
  det.Reset(2);
  det.SetEnabled(true);
  EXPECT_FALSE(det.OnAccess(0, 0, 0x1000, 8, true, 100).has_value());
  const auto race = det.OnAccess(1, 1, 0x1000, 8, true, 200);
  ASSERT_TRUE(race.has_value());
  EXPECT_EQ(race->prev.vcpu, 0);
  EXPECT_EQ(race->cur.vcpu, 1);
  EXPECT_TRUE(race->prev.write);
  EXPECT_TRUE(race->cur.write);
  EXPECT_EQ(race->addr, 0x1000u);
  EXPECT_EQ(det.races_found(), 1u);
}

TEST(RaceDetector, SameLaneAccessesAreProgramOrdered) {
  obs::RaceDetector det;
  det.Reset(2);
  det.SetEnabled(true);
  EXPECT_FALSE(det.OnAccess(0, 0, 0x1000, 8, true, 100).has_value());
  EXPECT_FALSE(det.OnAccess(0, 0, 0x1000, 8, true, 200).has_value());
  EXPECT_FALSE(det.OnAccess(0, 0, 0x1000, 8, false, 300).has_value());
  EXPECT_EQ(det.races_found(), 0u);
}

TEST(RaceDetector, CrossLaneReadsNeverRace) {
  obs::RaceDetector det;
  det.Reset(2);
  det.SetEnabled(true);
  EXPECT_FALSE(det.OnAccess(0, 0, 0x2000, 8, false, 100).has_value());
  EXPECT_FALSE(det.OnAccess(1, 1, 0x2000, 8, false, 200).has_value());
  // ...but an unordered write against either read does.
  EXPECT_TRUE(det.OnAccess(0, 0, 0x2000, 8, true, 300).has_value());
}

TEST(RaceDetector, ReleaseAcquireEdgeOrdersThePair) {
  obs::RaceDetector det;
  det.Reset(2);
  det.SetEnabled(true);
  EXPECT_FALSE(det.OnAccess(0, 0, 0x3000, 8, true, 100).has_value());
  const uint64_t handle = det.Release(0);
  det.Acquire(1, handle);
  EXPECT_FALSE(det.OnAccess(1, 1, 0x3000, 8, true, 200).has_value());
  EXPECT_EQ(det.races_found(), 0u);
  EXPECT_GE(det.hb_edges(), 1u);
}

TEST(RaceDetector, ReleaseSnapshotsOnlyThePast) {
  // The edge must carry what happened before the release, not what the
  // releasing lane does afterwards — that is the whole point of splitting
  // the message-passing edge into a snapshot and a join.
  obs::RaceDetector det;
  det.Reset(2);
  det.SetEnabled(true);
  const uint64_t handle = det.Release(0);
  EXPECT_FALSE(det.OnAccess(0, 0, 0x4000, 8, true, 100).has_value());
  det.Acquire(1, handle);
  EXPECT_TRUE(det.OnAccess(1, 1, 0x4000, 8, true, 200).has_value());
}

TEST(RaceDetector, JoinAndJoinAllOrderLanes) {
  obs::RaceDetector det;
  det.Reset(3);
  det.SetEnabled(true);
  EXPECT_FALSE(det.OnAccess(0, 0, 0x5000, 8, true, 100).has_value());
  det.Join(0, 1);  // IPI from lane 0 to lane 1.
  EXPECT_FALSE(det.OnAccess(1, 1, 0x5000, 8, true, 200).has_value());
  // Lane 2 saw neither write; the barrier join quiesces everything.
  det.JoinAll();
  EXPECT_FALSE(det.OnAccess(2, 2, 0x5000, 8, true, 300).has_value());
  EXPECT_EQ(det.races_found(), 0u);
}

TEST(RaceDetector, DistinctGranulesDoNotInteract) {
  obs::RaceDetector det;
  det.Reset(2);
  det.SetEnabled(true);
  EXPECT_FALSE(det.OnAccess(0, 0, 0x6000, 8, true, 100).has_value());
  EXPECT_FALSE(
      det.OnAccess(1, 1, 0x6000 + obs::kRaceGranule, 8, true, 200).has_value());
  // A spanning access overlaps both granules and races against each lane.
  EXPECT_TRUE(det.OnAccess(0, 0, 0x6000 + obs::kRaceGranule - 4, 8, false, 300)
                  .has_value());
}

// --- Machine probe -----------------------------------------------------------

TEST(RaceMachine, UnorderedProbeRaisesDataRaceTrap) {
  Machine machine;
  machine.SetVCpuCount(2);
  machine.SetRaceDetection(true);
  machine.ProbeSharedAccess(0x7000, 8, /*is_write=*/true);
  machine.SwitchVCpu(1);
  try {
    machine.ProbeSharedAccess(0x7000, 8, /*is_write=*/true);
    FAIL() << "expected kDataRace trap";
  } catch (const TrapException& trap) {
    EXPECT_EQ(trap.info().kind, TrapKind::kDataRace);
    EXPECT_EQ(trap.info().guest_addr, 0x7000u);
    EXPECT_FALSE(trap.info().detail.empty());
  }
  EXPECT_EQ(machine.race().races_found(), 1u);
}

TEST(RaceMachine, DetectionOffProbesNothing) {
  Machine machine;
  machine.SetVCpuCount(2);
  machine.ProbeSharedAccess(0x7000, 8, /*is_write=*/true);
  machine.SwitchVCpu(1);
  EXPECT_NO_THROW(machine.ProbeSharedAccess(0x7000, 8, /*is_write=*/true));
  EXPECT_EQ(machine.race().accesses_checked(), 0u);
}

TEST(RaceMachine, CrossVcpuIpiCreatesAnEdge) {
  Machine machine;
  machine.SetVCpuCount(2);
  machine.SetRaceDetection(true);
  machine.ProbeSharedAccess(0x8000, 8, /*is_write=*/true);
  machine.ChargeIpi(/*target_vcpu=*/1);  // vCPU 0 notifies vCPU 1.
  machine.SwitchVCpu(1);
  EXPECT_NO_THROW(machine.ProbeSharedAccess(0x8000, 8, /*is_write=*/true));
  EXPECT_EQ(machine.race().races_found(), 0u);
}

// --- End to end on the testbed ----------------------------------------------

ImageConfig TwoCompartmentConfig() {
  ImageConfig config;
  config.backend = IsolationBackend::kMpkSharedStack;
  config.compartments = {
      {std::string(kLibNet)},
      {std::string(kLibApp), std::string(kLibSched), std::string(kLibLibc),
       std::string(kLibAlloc)}};
  return config;
}

TEST(RaceTestbed, SeededCrossVcpuRaceTraps) {
  TestbedConfig config;
  config.image = TwoCompartmentConfig();
  config.vcpus = 2;
  config.race_detect = true;
  Testbed bed(config);
  bed.machine().tracer().SetEnabled(true);
  const Gaddr target = bed.AllocShared(64);
  int traps = 0;
  for (int pin = 0; pin < 2; ++pin) {
    bed.SpawnApp(
        "racer" + std::to_string(pin),
        [&bed, &traps, target, pin] {
          try {
            bed.image().SpaceOf(kLibApp).WriteT<uint64_t>(target, 0xbeef + pin);
          } catch (const TrapException& trap) {
            EXPECT_EQ(trap.info().kind, TrapKind::kDataRace);
            ++traps;
          }
        },
        pin);
  }
  EXPECT_TRUE(bed.Run().ok());
  // Whichever lane's write lands second observes the race; the first sails.
  EXPECT_EQ(traps, 1);
  EXPECT_EQ(bed.machine().race().races_found(), 1u);

  // Offline agreement: replaying the captured trace reaches the same
  // verdict as the in-situ detector (`flexlint --races`).
  const std::string json =
      obs::TraceToChromeJson(bed.machine().tracer().Snapshot());
  const auto replay = analysis::ReplayRaces(json);
  ASSERT_TRUE(replay.ok());
  EXPECT_EQ(replay.value().vcpus, 2);
  EXPECT_EQ(replay.value().recorded_races, 1u);
  EXPECT_EQ(replay.value().races.size(), 1u);
  EXPECT_GE(replay.value().accesses, 2u);
}

TEST(RaceTestbed, SchedulerEdgeSynchronizedHandoffIsNotARace) {
  // Message-passing handoff through the scheduler: the producer writes,
  // then spawns the consumer. Enqueue releases the producer's clock and the
  // consumer's activation acquires it, so the write/read pair is ordered
  // even though the consumer runs pinned to the other vCPU.
  TestbedConfig config;
  config.image = TwoCompartmentConfig();
  config.vcpus = 2;
  config.race_detect = true;
  Testbed bed(config);
  const Gaddr target = bed.AllocShared(64);
  uint64_t consumed = 0;
  bed.SpawnApp(
      "producer",
      [&bed, &consumed, target] {
        bed.image().SpaceOf(kLibApp).WriteT<uint64_t>(target, 0xfeed);
        bed.SpawnApp(
            "consumer",
            [&bed, &consumed, target] {
              consumed = bed.image().SpaceOf(kLibApp).ReadT<uint64_t>(target);
            },
            /*affinity=*/1);
      },
      /*affinity=*/0);
  EXPECT_TRUE(bed.Run().ok());
  EXPECT_EQ(consumed, 0xfeedu);
  EXPECT_EQ(bed.machine().race().races_found(), 0u);
}

TEST(RaceTestbed, CleanSmpWorkloadReportsNoRaces) {
  // Disjoint shared buffers per thread: plenty of probes, zero races.
  TestbedConfig config;
  config.image = TwoCompartmentConfig();
  config.vcpus = 2;
  config.race_detect = true;
  Testbed bed(config);
  const Gaddr buffers[2] = {bed.AllocShared(128), bed.AllocShared(128)};
  for (int pin = 0; pin < 2; ++pin) {
    bed.SpawnApp(
        "worker" + std::to_string(pin),
        [&bed, addr = buffers[pin]] {
          for (int i = 0; i < 16; ++i) {
            bed.image().SpaceOf(kLibApp).WriteT<uint64_t>(addr, i);
            bed.scheduler().Yield();
          }
        },
        pin);
  }
  EXPECT_TRUE(bed.Run().ok());
  EXPECT_GT(bed.machine().race().accesses_checked(), 0u);
  EXPECT_EQ(bed.machine().race().races_found(), 0u);
}

TEST(RaceTestbed, ValidatorOnLeavesModeledCyclesBitIdentical) {
  // The acceptance gate in miniature (bench/abl_smp.cc runs the full one):
  // the validator observes and never charges, so a race-free workload runs
  // to the exact same per-vCPU cycle counts with detection on or off.
  const auto run = [](bool detect) {
    TestbedConfig config;
    config.image = TwoCompartmentConfig();
    config.vcpus = 2;
    config.race_detect = detect;
    Testbed bed(config);
    const Gaddr buffers[2] = {bed.AllocShared(128), bed.AllocShared(128)};
    const RouteHandle route = bed.image().Resolve(kLibApp, kLibNet);
    for (int pin = 0; pin < 2; ++pin) {
      bed.SpawnApp(
          "w" + std::to_string(pin),
          [&bed, &route, addr = buffers[pin]] {
            for (int i = 0; i < 8; ++i) {
              bed.image().SpaceOf(kLibApp).WriteT<uint64_t>(addr, i);
              bed.image().Call(route,
                               [&bed] { bed.machine().ChargeCompute(600); });
              bed.scheduler().Yield();
            }
          },
          pin);
    }
    EXPECT_TRUE(bed.Run().ok());
    std::vector<uint64_t> cycles;
    for (int v = 0; v < bed.machine().vcpu_count(); ++v) {
      cycles.push_back(bed.machine().clock_of(v).cycles());
    }
    cycles.push_back(bed.machine().stats().gate_crossings);
    cycles.push_back(bed.machine().stats().ipi_count);
    cycles.push_back(bed.scheduler().context_switches());
    return cycles;
  };
  EXPECT_EQ(run(false), run(true));
}

// --- Offline replay corner cases --------------------------------------------

TEST(RaceReplay, EmptyTraceYieldsEmptyResult) {
  const auto result =
      analysis::ReplayRaces("{\"traceEvents\":[\n]}\n");
  ASSERT_TRUE(result.ok());
  EXPECT_EQ(result.value().events, 0u);
  EXPECT_TRUE(result.value().races.empty());
}

TEST(RaceReplay, NonTraceInputIsRejected) {
  EXPECT_FALSE(analysis::ReplayRaces("not a trace").ok());
}

}  // namespace
}  // namespace flexos
