#include <gtest/gtest.h>

#include "support/intrusive_list.h"
#include "support/rng.h"
#include "support/status.h"
#include "support/strings.h"

namespace flexos {
namespace {

TEST(Status, OkByDefault) {
  Status status;
  EXPECT_TRUE(status.ok());
  EXPECT_EQ(status.ToString(), "OK");
}

TEST(Status, CarriesCodeAndMessage) {
  Status status(ErrorCode::kNotFound, "missing thing");
  EXPECT_FALSE(status.ok());
  EXPECT_EQ(status.code(), ErrorCode::kNotFound);
  EXPECT_EQ(status.ToString(), "NOT_FOUND: missing thing");
}

TEST(Status, EveryCodeHasAName) {
  for (int code = 0; code <= static_cast<int>(ErrorCode::kInternal); ++code) {
    EXPECT_NE(ErrorCodeName(static_cast<ErrorCode>(code)), "UNKNOWN");
  }
}

TEST(Result, HoldsValue) {
  Result<int> result(42);
  ASSERT_TRUE(result.ok());
  EXPECT_EQ(result.value(), 42);
  EXPECT_EQ(result.value_or(7), 42);
}

TEST(Result, HoldsError) {
  Result<int> result(Status(ErrorCode::kOutOfMemory, "oom"));
  EXPECT_FALSE(result.ok());
  EXPECT_EQ(result.code(), ErrorCode::kOutOfMemory);
  EXPECT_EQ(result.value_or(7), 7);
}

Result<int> Doubler(Result<int> input) {
  FLEXOS_ASSIGN_OR_RETURN(int value, input);
  return value * 2;
}

TEST(Result, AssignOrReturnPropagates) {
  EXPECT_EQ(Doubler(21).value(), 42);
  EXPECT_EQ(Doubler(Status(ErrorCode::kUnavailable)).code(),
            ErrorCode::kUnavailable);
}

TEST(Strings, TrimWhitespace) {
  EXPECT_EQ(TrimWhitespace("  a b \t\n"), "a b");
  EXPECT_EQ(TrimWhitespace(""), "");
  EXPECT_EQ(TrimWhitespace("   "), "");
}

TEST(Strings, SplitKeepsEmptyPieces) {
  const auto pieces = SplitString("a,,b", ',');
  ASSERT_EQ(pieces.size(), 3u);
  EXPECT_EQ(pieces[1], "");
}

TEST(Strings, SplitAndTrimDropsEmpties) {
  const auto pieces = SplitAndTrim(" a , , b ", ',');
  ASSERT_EQ(pieces.size(), 2u);
  EXPECT_EQ(pieces[0], "a");
  EXPECT_EQ(pieces[1], "b");
}

TEST(Strings, ParseU64) {
  EXPECT_EQ(ParseU64("0").value(), 0u);
  EXPECT_EQ(ParseU64("18446744073709551615").value(), UINT64_MAX);
  EXPECT_FALSE(ParseU64("18446744073709551616").has_value());  // Overflow.
  EXPECT_FALSE(ParseU64("12x").has_value());
  EXPECT_FALSE(ParseU64("").has_value());
}

TEST(Strings, StrFormat) {
  EXPECT_EQ(StrFormat("%d-%s", 5, "x"), "5-x");
  EXPECT_EQ(StrFormat("%s", std::string(500, 'y').c_str()).size(), 500u);
}

TEST(Rng, DeterministicForSeed) {
  Rng a(123);
  Rng b(123);
  for (int i = 0; i < 100; ++i) {
    EXPECT_EQ(a.NextU64(), b.NextU64());
  }
}

TEST(Rng, NextBelowInRange) {
  Rng rng(99);
  for (int i = 0; i < 1000; ++i) {
    EXPECT_LT(rng.NextBelow(17), 17u);
  }
}

TEST(Rng, NextDoubleInUnitInterval) {
  Rng rng(5);
  for (int i = 0; i < 1000; ++i) {
    const double value = rng.NextDouble();
    EXPECT_GE(value, 0.0);
    EXPECT_LT(value, 1.0);
  }
}

struct Node {
  int value = 0;
  ListNode link;
  static constexpr ListNode Node::* kLink = &Node::link;
};

TEST(IntrusiveList, PushPopFifo) {
  IntrusiveList<Node, Node::kLink> list;
  Node a{.value = 1}, b{.value = 2}, c{.value = 3};
  list.PushBack(&a);
  list.PushBack(&b);
  list.PushFront(&c);
  EXPECT_EQ(list.size(), 3u);
  EXPECT_EQ(list.PopFront()->value, 3);
  EXPECT_EQ(list.PopFront()->value, 1);
  EXPECT_EQ(list.PopFront()->value, 2);
  EXPECT_TRUE(list.empty());
  EXPECT_EQ(list.PopFront(), nullptr);
}

TEST(IntrusiveList, RemoveFromMiddle) {
  IntrusiveList<Node, Node::kLink> list;
  Node a{.value = 1}, b{.value = 2}, c{.value = 3};
  list.PushBack(&a);
  list.PushBack(&b);
  list.PushBack(&c);
  list.Remove(&b);
  EXPECT_FALSE(list.Contains(&b));
  EXPECT_TRUE(list.Contains(&a));
  EXPECT_EQ(list.size(), 2u);
  EXPECT_FALSE(b.link.linked());
}

}  // namespace
}  // namespace flexos
