#include <gtest/gtest.h>

#include <set>

#include "core/metadata.h"

namespace flexos {
namespace {

TEST(Metadata, ParsesPaperSchedulerExample) {
  // The verbatim example from paper §2.
  Result<LibraryMeta> meta = ParseLibraryMeta(
      "sched",
      "[Memory access] Read(Own,Shared); Write(Own,Shared)\n"
      "[Call] alloc::malloc, alloc::free\n"
      "[API] thread_add(...); thread_rm(...); yield(...)\n"
      "[Requires] *(Read,Own), *(Write,Shared), *(Call, thread_add)");
  ASSERT_TRUE(meta.ok()) << meta.status().ToString();
  EXPECT_TRUE(meta->behavior.reads_own);
  EXPECT_TRUE(meta->behavior.reads_shared);
  EXPECT_FALSE(meta->behavior.reads_all);
  EXPECT_TRUE(meta->behavior.writes_own);
  EXPECT_TRUE(meta->behavior.writes_shared);
  EXPECT_FALSE(meta->behavior.writes_all);
  EXPECT_FALSE(meta->behavior.calls_any);
  EXPECT_EQ(meta->behavior.calls.count("alloc::malloc"), 1u);
  EXPECT_EQ(meta->behavior.calls.count("alloc::free"), 1u);
  ASSERT_EQ(meta->api.size(), 3u);
  EXPECT_EQ(meta->api[0].name, "thread_add");
  EXPECT_TRUE(meta->requires_spec.present);
  EXPECT_TRUE(meta->requires_spec.others_may_read_own);
  EXPECT_FALSE(meta->requires_spec.others_may_write_own);
  EXPECT_TRUE(meta->requires_spec.others_may_write_shared);
  EXPECT_EQ(meta->requires_spec.callable_funcs.count("thread_add"), 1u);
}

TEST(Metadata, ParsesPaperUnsafeComponentExample) {
  Result<LibraryMeta> meta = ParseLibraryMeta(
      "clib",
      "[Memory access] Read(*); Write(*)\n"
      "[Call] *");
  ASSERT_TRUE(meta.ok()) << meta.status().ToString();
  EXPECT_TRUE(meta->behavior.reads_all);
  EXPECT_TRUE(meta->behavior.writes_all);
  EXPECT_TRUE(meta->behavior.calls_any);
  EXPECT_FALSE(meta->requires_spec.present);
}

TEST(Metadata, RoundTripsThroughToString) {
  const LibraryMeta original = SchedulerMeta();
  Result<LibraryMeta> reparsed =
      ParseLibraryMeta(original.name, original.ToString());
  ASSERT_TRUE(reparsed.ok()) << reparsed.status().ToString();
  EXPECT_EQ(reparsed->behavior.reads_own, original.behavior.reads_own);
  EXPECT_EQ(reparsed->behavior.writes_shared,
            original.behavior.writes_shared);
  EXPECT_EQ(reparsed->behavior.calls, original.behavior.calls);
  EXPECT_EQ(reparsed->api.size(), original.api.size());
  EXPECT_EQ(reparsed->requires_spec.callable_funcs,
            original.requires_spec.callable_funcs);
  EXPECT_EQ(reparsed->requires_spec.others_may_write_shared,
            original.requires_spec.others_may_write_shared);
}

TEST(Metadata, RejectsMalformedSections) {
  EXPECT_FALSE(ParseLibraryMeta("x", "[Memory access] Fly(Own)").ok());
  EXPECT_FALSE(ParseLibraryMeta("x", "[Memory access] Read(Banana)").ok());
  EXPECT_FALSE(ParseLibraryMeta("x", "[Unknown] stuff").ok());
  EXPECT_FALSE(ParseLibraryMeta("x", "stuff before section").ok());
  EXPECT_FALSE(ParseLibraryMeta("x", "[Requires] Write(Own)").ok());
  EXPECT_FALSE(ParseLibraryMeta("x", "[Requires] *(Teleport,Own)").ok());
}

TEST(Metadata, ToleratesTrailingEllipsisLikeThePaper) {
  // The paper's example literally ends with "*. . ." — accept "*".
  Result<LibraryMeta> meta = ParseLibraryMeta(
      "sched",
      "[Requires] *(Read,Own), *(Write,Shared), *");
  ASSERT_TRUE(meta.ok()) << meta.status().ToString();
  EXPECT_TRUE(meta->requires_spec.present);
}

TEST(Metadata, MultilineSectionsAccumulate) {
  Result<LibraryMeta> meta = ParseLibraryMeta(
      "x",
      "[Call] a::f,\n"
      "  b::g\n");
  ASSERT_TRUE(meta.ok()) << meta.status().ToString();
  EXPECT_EQ(meta->behavior.calls.size(), 2u);
}

TEST(Metadata, RejectsMalformedRequiresClauses) {
  // A clause needs both a kind and a scope.
  EXPECT_FALSE(ParseLibraryMeta("x", "[Requires] *(Read)").ok());
  // Items must be call-like: bare words are not clauses.
  EXPECT_FALSE(ParseLibraryMeta("x", "[Requires] ReadOwn").ok());
  // Only the wildcard subject is supported; a named subject is an explicit
  // kUnimplemented, not a silent accept.
  const Status named =
      ParseLibraryMeta("x", "[Requires] lib(Read,Own)").status();
  ASSERT_FALSE(named.ok());
  EXPECT_EQ(named.code(), ErrorCode::kUnimplemented);
  EXPECT_FALSE(ParseLibraryMeta("x", "[Requires] *(Read,Elsewhere)").ok());
  EXPECT_FALSE(ParseLibraryMeta("x", "[Requires] *(Write,Banana)").ok());
}

TEST(Metadata, DuplicateApiDeclarationsCollapse) {
  Result<LibraryMeta> meta = ParseLibraryMeta(
      "x", "[API] serve(...); poll(...); serve(...); serve");
  ASSERT_TRUE(meta.ok()) << meta.status().ToString();
  ASSERT_EQ(meta->api.size(), 2u);
  EXPECT_EQ(meta->api[0].name, "serve");
  EXPECT_EQ(meta->api[1].name, "poll");
}

TEST(Metadata, WildcardCallMixedWithConcreteListKeepsBoth) {
  // flexlint flags this as FL008, but the parser preserves both facts so
  // the linter can see them.
  Result<LibraryMeta> meta =
      ParseLibraryMeta("x", "[Call] *, alloc::malloc");
  ASSERT_TRUE(meta.ok()) << meta.status().ToString();
  EXPECT_TRUE(meta->behavior.calls_any);
  EXPECT_EQ(meta->behavior.calls.count("alloc::malloc"), 1u);
}

TEST(Metadata, AllBuiltinMetasRoundTripStably) {
  const std::vector<LibraryMeta> metas = {
      SchedulerMeta(),    NetStackMeta(), LibcMeta(),       AllocMeta(),
      FsMeta(),           AppMeta("app"), UnsafeCLibMeta("c")};
  for (const LibraryMeta& original : metas) {
    const std::string first = original.ToString();
    Result<LibraryMeta> reparsed = ParseLibraryMeta(original.name, first);
    ASSERT_TRUE(reparsed.ok())
        << original.name << ": " << reparsed.status().ToString();
    // Fixed point: serializing the reparse reproduces the text exactly.
    EXPECT_EQ(reparsed->ToString(), first) << original.name;
  }
}

TEST(Metadata, ParsesReentrantAndDeviceSections) {
  const LibraryMeta meta =
      ParseLibraryMeta("drv",
                       "[Memory access] Read(Own); Write(Own)\n"
                       "[Reentrant] audited internal locking\n"
                       "[Device] nic, timer\n")
          .value();
  EXPECT_TRUE(meta.reentrant);
  EXPECT_EQ(meta.devices, (std::set<std::string>{"nic", "timer"}));
  // Round trip: the serialized form reparses to the same declarations.
  const LibraryMeta reparsed =
      ParseLibraryMeta("drv", meta.ToString()).value();
  EXPECT_TRUE(reparsed.reentrant);
  EXPECT_EQ(reparsed.devices, meta.devices);
}

TEST(Metadata, ReentrantAndDevicesDefaultToAbsent) {
  const LibraryMeta meta =
      ParseLibraryMeta("plain", "[Memory access] Read(Own); Write(Own)\n")
          .value();
  EXPECT_FALSE(meta.reentrant);
  EXPECT_TRUE(meta.devices.empty());
  EXPECT_EQ(meta.ToString().find("[Reentrant]"), std::string::npos);
  EXPECT_EQ(meta.ToString().find("[Device]"), std::string::npos);
}

TEST(Metadata, NetStackOwnsItsDevices) {
  // The builtin net stack programs the NIC and the protocol timers; FL014
  // keys off this declaration.
  EXPECT_EQ(NetStackMeta().devices, (std::set<std::string>{"nic", "timer"}));
  EXPECT_TRUE(SchedulerMeta().devices.empty());
}

TEST(Metadata, NumberedAppShardsResolveToAppMeta) {
  // Sharded SMP configs place app1, app2, ...; the builtin resolver treats
  // every numbered shard like the base app library.
  const auto shard = BuiltinLibraryMeta("app7");
  ASSERT_TRUE(shard.has_value());
  EXPECT_EQ(shard->name, "app7");
  EXPECT_FALSE(shard->behavior.calls_any);
  EXPECT_FALSE(BuiltinLibraryMeta("app7x").has_value());
  EXPECT_FALSE(BuiltinLibraryMeta("application").has_value());
}

TEST(Metadata, BuiltinMetasAreSelfConsistent) {
  EXPECT_EQ(SchedulerMeta().name, "sched");
  EXPECT_EQ(NetStackMeta().name, "net");
  EXPECT_TRUE(NetStackMeta().behavior.writes_all);
  EXPECT_TRUE(UnsafeCLibMeta("blob").behavior.calls_any);
  EXPECT_TRUE(LibcMeta().requires_spec.present);
  EXPECT_FALSE(AppMeta("iperf").behavior.calls_any);
}

}  // namespace
}  // namespace flexos
