#include <gtest/gtest.h>

#include "alloc/freelist_heap.h"
#include "libc/gstring.h"
#include "libc/msg_queue.h"
#include "sched/coop_scheduler.h"

namespace flexos {
namespace {

class MsgQueueTest : public ::testing::Test {
 protected:
  MsgQueueTest() : heap_(space_, 0, 1 << 20) {
    FLEXOS_CHECK(space_.Map(0, 2 << 20, 0).ok(), "map failed");
    // Scratch area for message payloads.
    scratch_ = heap_.Allocate(4096).value();
  }

  std::unique_ptr<MsgQueue> MakeQueue(uint32_t depth, uint32_t msg_bytes) {
    Result<std::unique_ptr<MsgQueue>> queue = MsgQueue::Create(
        sched_, heap_, "testq", depth, msg_bytes);
    FLEXOS_CHECK(queue.ok(), "queue create failed");
    return std::move(queue).value();
  }

  Machine machine_;
  AddressSpace space_{machine_, "mq-test", 4 << 20};
  CoopScheduler sched_{machine_};
  FreelistHeap heap_;
  Gaddr scratch_ = 0;
};

TEST_F(MsgQueueTest, CreateValidatesArguments) {
  EXPECT_FALSE(MsgQueue::Create(sched_, heap_, "q", 0, 64).ok());
  EXPECT_FALSE(MsgQueue::Create(sched_, heap_, "q", 4, 0).ok());
}

TEST_F(MsgQueueTest, FifoRoundTrip) {
  auto queue = MakeQueue(4, 64);
  for (int i = 0; i < 3; ++i) {
    GStrcpyIn(space_, scratch_, "msg" + std::to_string(i));
    ASSERT_TRUE(queue->TrySend(scratch_, 5).ok());
  }
  EXPECT_EQ(queue->size(), 3u);
  for (int i = 0; i < 3; ++i) {
    Result<uint32_t> size = queue->TryRecv(scratch_ + 512, 64);
    ASSERT_TRUE(size.ok());
    EXPECT_EQ(size.value(), 5u);
    EXPECT_EQ(GStrOut(space_, scratch_ + 512, 64),
              "msg" + std::to_string(i));
  }
  EXPECT_TRUE(queue->Empty());
}

TEST_F(MsgQueueTest, TryOpsReportWouldBlock) {
  auto queue = MakeQueue(2, 16);
  EXPECT_EQ(queue->TryRecv(scratch_, 16).code(), ErrorCode::kWouldBlock);
  ASSERT_TRUE(queue->TrySend(scratch_, 8).ok());
  ASSERT_TRUE(queue->TrySend(scratch_, 8).ok());
  EXPECT_TRUE(queue->Full());
  EXPECT_EQ(queue->TrySend(scratch_, 8).code(), ErrorCode::kWouldBlock);
}

TEST_F(MsgQueueTest, OversizedMessageRejected) {
  auto queue = MakeQueue(2, 16);
  EXPECT_EQ(queue->TrySend(scratch_, 17).code(),
            ErrorCode::kInvalidArgument);
  EXPECT_EQ(queue->Send(scratch_, 17).code(), ErrorCode::kInvalidArgument);
}

TEST_F(MsgQueueTest, SmallRecvBufferLeavesMessageQueued) {
  auto queue = MakeQueue(2, 64);
  ASSERT_TRUE(queue->TrySend(scratch_, 32).ok());
  EXPECT_EQ(queue->TryRecv(scratch_ + 512, 8).code(),
            ErrorCode::kOutOfRange);
  EXPECT_EQ(queue->size(), 1u);  // Still there.
  EXPECT_TRUE(queue->TryRecv(scratch_ + 512, 64).ok());
}

TEST_F(MsgQueueTest, WrapsAroundManyTimes) {
  auto queue = MakeQueue(3, 16);
  for (uint32_t round = 0; round < 50; ++round) {
    space_.WriteT<uint32_t>(scratch_, round);
    ASSERT_TRUE(queue->TrySend(scratch_, 4).ok());
    ASSERT_TRUE(queue->TryRecv(scratch_ + 512, 16).ok());
    EXPECT_EQ(space_.ReadT<uint32_t>(scratch_ + 512), round);
  }
  EXPECT_EQ(queue->messages_sent(), 50u);
}

TEST_F(MsgQueueTest, BlockingProducerConsumer) {
  auto queue = MakeQueue(2, 32);
  std::vector<uint32_t> received;
  ASSERT_TRUE(sched_.Spawn("consumer", [&] {
    for (int i = 0; i < 8; ++i) {
      Result<uint32_t> size = queue->Recv(scratch_ + 1024, 32);
      ASSERT_TRUE(size.ok());
      received.push_back(space_.ReadT<uint32_t>(scratch_ + 1024));
    }
  }).ok());
  ASSERT_TRUE(sched_.Spawn("producer", [&] {
    for (uint32_t i = 0; i < 8; ++i) {
      space_.WriteT<uint32_t>(scratch_, i);
      // Depth 2: the producer must block on a full queue at least once.
      ASSERT_TRUE(queue->Send(scratch_, 4).ok());
    }
  }).ok());
  EXPECT_TRUE(sched_.Run().ok());
  ASSERT_EQ(received.size(), 8u);
  for (uint32_t i = 0; i < 8; ++i) {
    EXPECT_EQ(received[i], i);
  }
}

TEST_F(MsgQueueTest, ZeroLengthMessagesWork) {
  auto queue = MakeQueue(2, 16);
  ASSERT_TRUE(queue->TrySend(scratch_, 0).ok());
  Result<uint32_t> size = queue->TryRecv(scratch_ + 512, 16);
  ASSERT_TRUE(size.ok());
  EXPECT_EQ(size.value(), 0u);
}

TEST_F(MsgQueueTest, StorageComesFromTheGivenAllocator) {
  const uint64_t before = heap_.stats().bytes_in_use;
  auto queue = MakeQueue(8, 256);
  EXPECT_GT(heap_.stats().bytes_in_use, before);
  queue.reset();
  EXPECT_EQ(heap_.stats().bytes_in_use, before);
}

}  // namespace
}  // namespace flexos
