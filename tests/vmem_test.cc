#include <gtest/gtest.h>

#include "vmem/access.h"
#include "vmem/address_space.h"
#include "vmem/shadow.h"

namespace flexos {
namespace {

class VmemTest : public ::testing::Test {
 protected:
  Machine machine_;
  AddressSpace space_{machine_, "test", 64 * kPageSize};
};

TEST_F(VmemTest, MapWriteReadRoundTrip) {
  ASSERT_TRUE(space_.Map(0, 4 * kPageSize, 1).ok());
  const char data[] = "hello flexos";
  space_.Write(100, data, sizeof(data));
  char out[sizeof(data)] = {};
  space_.Read(100, out, sizeof(data));
  EXPECT_STREQ(out, "hello flexos");
}

TEST_F(VmemTest, CrossPageAccess) {
  ASSERT_TRUE(space_.Map(0, 4 * kPageSize, 1).ok());
  std::vector<uint8_t> data(3 * kPageSize);
  for (size_t i = 0; i < data.size(); ++i) {
    data[i] = static_cast<uint8_t>(i * 7);
  }
  space_.Write(kPageSize / 2, data.data(), data.size());
  std::vector<uint8_t> out(data.size());
  space_.Read(kPageSize / 2, out.data(), out.size());
  EXPECT_EQ(data, out);
}

TEST_F(VmemTest, UnmappedAccessPageFaults) {
  uint8_t byte = 0;
  EXPECT_THROW(space_.Read(10 * kPageSize, &byte, 1), TrapException);
  try {
    space_.Write(10 * kPageSize, &byte, 1);
    FAIL();
  } catch (const TrapException& trap) {
    EXPECT_EQ(trap.info().kind, TrapKind::kPageFault);
    EXPECT_EQ(trap.info().access, AccessKind::kWrite);
  }
}

TEST_F(VmemTest, PkruWriteDisableFaultsOnWriteNotRead) {
  ASSERT_TRUE(space_.Map(0, kPageSize, 2).ok());
  machine_.context().pkru =
      Pkru::AllowAll().WithAccess(2, /*allow_read=*/true,
                                  /*allow_write=*/false);
  uint8_t byte = 7;
  EXPECT_NO_THROW(space_.Read(0, &byte, 1));
  try {
    space_.Write(0, &byte, 1);
    FAIL();
  } catch (const TrapException& trap) {
    EXPECT_EQ(trap.info().kind, TrapKind::kProtectionFault);
    EXPECT_EQ(trap.info().pkey, 2);
  }
  EXPECT_EQ(machine_.stats().traps, 1u);
}

TEST_F(VmemTest, PkruAccessDisableFaultsOnRead) {
  ASSERT_TRUE(space_.Map(0, kPageSize, 3).ok());
  machine_.context().pkru = Pkru::AllowAll().WithAccess(3, false, false);
  uint8_t byte = 0;
  EXPECT_THROW(space_.Read(0, &byte, 1), TrapException);
}

TEST_F(VmemTest, SetKeyRetags) {
  ASSERT_TRUE(space_.Map(0, kPageSize, 1).ok());
  ASSERT_TRUE(space_.SetKey(0, kPageSize, 4).ok());
  EXPECT_EQ(space_.KeyOf(0).value(), 4);
  machine_.context().pkru = Pkru::AllowAll().WithAccess(4, false, false);
  uint8_t byte = 0;
  EXPECT_THROW(space_.Read(0, &byte, 1), TrapException);
}

TEST_F(VmemTest, GuardPageTrapsAsStackOverflow) {
  ASSERT_TRUE(space_.MapGuard(0, kPageSize).ok());
  uint8_t byte = 0;
  try {
    space_.Read(16, &byte, 1);
    FAIL();
  } catch (const TrapException& trap) {
    EXPECT_EQ(trap.info().kind, TrapKind::kStackOverflow);
  }
}

TEST_F(VmemTest, DoubleMapRejected) {
  ASSERT_TRUE(space_.Map(0, kPageSize, 1).ok());
  EXPECT_EQ(space_.Map(0, kPageSize, 1).code(), ErrorCode::kAlreadyExists);
}

TEST_F(VmemTest, UnalignedMapRejected) {
  EXPECT_EQ(space_.Map(10, kPageSize, 1).code(),
            ErrorCode::kInvalidArgument);
  EXPECT_EQ(space_.Map(0, 100, 1).code(), ErrorCode::kInvalidArgument);
}

TEST_F(VmemTest, MapBeyondSpaceRejected) {
  EXPECT_EQ(space_.Map(63 * kPageSize, 2 * kPageSize, 1).code(),
            ErrorCode::kOutOfRange);
}

TEST_F(VmemTest, BadPkeyRejected) {
  EXPECT_EQ(space_.Map(0, kPageSize, 16).code(),
            ErrorCode::kInvalidArgument);
}

TEST_F(VmemTest, UnmapThenAccessFaults) {
  ASSERT_TRUE(space_.Map(0, kPageSize, 1).ok());
  ASSERT_TRUE(space_.Unmap(0, kPageSize).ok());
  uint8_t byte = 0;
  EXPECT_THROW(space_.Read(0, &byte, 1), TrapException);
}

TEST_F(VmemTest, AccessChargesCycles) {
  ASSERT_TRUE(space_.Map(0, 4 * kPageSize, 0).ok());
  const uint64_t before = machine_.clock().cycles();
  std::vector<uint8_t> buffer(8192);
  space_.Write(0, buffer.data(), buffer.size());
  EXPECT_GT(machine_.clock().cycles(), before);
}

TEST_F(VmemTest, UncheckedAccessBypassesProtectionAndCharges) {
  ASSERT_TRUE(space_.Map(0, kPageSize, 5).ok());
  machine_.context().pkru = Pkru::DenyAll();
  const uint64_t before = machine_.clock().cycles();
  uint8_t byte = 9;
  EXPECT_NO_THROW(space_.WriteUnchecked(0, &byte, 1));
  EXPECT_NO_THROW(space_.ReadUnchecked(0, &byte, 1));
  EXPECT_EQ(machine_.clock().cycles(), before);
}

TEST_F(VmemTest, AliasSharesBacking) {
  AddressSpace other(machine_, "other", 64 * kPageSize);
  ASSERT_TRUE(space_.Map(0, kPageSize, 0).ok());
  ASSERT_TRUE(other.MapAlias(0, space_, 0, kPageSize).ok());
  const uint32_t value = 0xdeadbeef;
  space_.WriteT<uint32_t>(64, value);
  EXPECT_EQ(other.ReadT<uint32_t>(64), value);
  other.WriteT<uint32_t>(64, 7);
  EXPECT_EQ(space_.ReadT<uint32_t>(64), 7u);
}

// --- ASAN-lite shadow -----------------------------------------------------

class ShadowTest : public VmemTest {
 protected:
  void SetUp() override {
    ASSERT_TRUE(space_.Map(0, 4 * kPageSize, 0).ok());
    machine_.context().shadow_checks = true;
  }
};

TEST_F(ShadowTest, PoisonedAccessTraps) {
  space_.Poison(64, 32, kShadowHeapRedzone);
  uint8_t byte = 0;
  try {
    space_.Read(64, &byte, 1);
    FAIL();
  } catch (const TrapException& trap) {
    EXPECT_EQ(trap.info().kind, TrapKind::kAsanViolation);
  }
}

TEST_F(ShadowTest, UnpoisonedAccessPasses) {
  space_.Poison(64, 32, kShadowHeapRedzone);
  space_.Unpoison(64, 32);
  uint8_t byte = 0;
  EXPECT_NO_THROW(space_.Read(64, &byte, 1));
}

TEST_F(ShadowTest, AccessBeforeRedzoneIsFine) {
  space_.Poison(128, 64, kShadowHeapRedzone);
  uint8_t buffer[64];
  EXPECT_NO_THROW(space_.Read(64, buffer, 64));
  EXPECT_THROW(space_.Read(64, buffer, 65), TrapException);
}

TEST_F(ShadowTest, PartialGranuleTailHonored) {
  // Unpoison 12 bytes: granule 0 fully addressable, granule 1 has 4 valid.
  space_.Poison(0, 32, kShadowHeapRedzone);
  space_.Unpoison(0, 12);
  uint8_t buffer[16];
  EXPECT_NO_THROW(space_.Read(0, buffer, 12));
  EXPECT_THROW(space_.Read(0, buffer, 13), TrapException);
}

TEST_F(ShadowTest, ChecksOffWhenUninstrumented) {
  space_.Poison(64, 32, kShadowFreed);
  machine_.context().shadow_checks = false;
  uint8_t byte = 0;
  EXPECT_NO_THROW(space_.Read(64, &byte, 1));
}

TEST_F(ShadowTest, IsPoisonedReflectsState) {
  EXPECT_FALSE(space_.IsPoisoned(0, 64));
  space_.Poison(0, 64, kShadowFreed);
  EXPECT_TRUE(space_.IsPoisoned(0, 64));
  EXPECT_TRUE(space_.IsPoisoned(32, 8));
}

TEST(ShadowNames, CodesHaveNames) {
  EXPECT_EQ(ShadowCodeName(kShadowAddressable), "addressable");
  EXPECT_EQ(ShadowCodeName(kShadowHeapRedzone), "heap-redzone");
  EXPECT_EQ(ShadowCodeName(kShadowFreed), "heap-freed");
  EXPECT_EQ(ShadowCodeName(3), "partially-addressable");
}

// --- GuestSlice -------------------------------------------------------------

TEST_F(VmemTest, GuestSliceBounds) {
  ASSERT_TRUE(space_.Map(0, kPageSize, 0).ok());
  GuestSlice slice(space_, 0, 128);
  slice.WriteTAt<uint32_t>(0, 77);
  EXPECT_EQ(slice.ReadTAt<uint32_t>(0), 77u);
  GuestSlice sub = slice.Sub(64, 64);
  EXPECT_EQ(sub.addr(), 64u);
  EXPECT_EQ(sub.size(), 64u);
  EXPECT_EQ(slice.ToVector().size(), 128u);
}

}  // namespace
}  // namespace flexos
