// Multi-vCPU scheduling and determinism (DESIGN.md §12): pinning, work
// stealing, per-core key state, cross-vCPU IPI charging, per-lane
// attribution conservation, and the replay-identity guarantee — same seed
// and vCPU count must reproduce the exact same event log.
#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "apps/testbed.h"
#include "fault/supervisor.h"
#include "sched/coop_scheduler.h"

namespace flexos {
namespace {

ImageConfig TwoCompartmentConfig(IsolationBackend backend) {
  ImageConfig config;
  config.backend = backend;
  config.compartments = {
      {std::string(kLibNet)},
      {std::string(kLibApp), std::string(kLibSched), std::string(kLibLibc),
       std::string(kLibAlloc)}};
  return config;
}

// --- Machine-level vCPU plumbing -------------------------------------------

TEST(SmpMachine, BootsSingleVcpuByDefault) {
  Machine machine;
  EXPECT_EQ(machine.vcpu_count(), 1);
  EXPECT_EQ(machine.current_vcpu(), 0);
  EXPECT_EQ(machine.stats().ipi_count, 0u);
}

TEST(SmpMachine, SetVCpuCountClampsToSupportedRange) {
  Machine machine;
  machine.SetVCpuCount(0);
  EXPECT_EQ(machine.vcpu_count(), 1);
  machine.SetVCpuCount(kMaxVCpus + 5);
  EXPECT_EQ(machine.vcpu_count(), kMaxVCpus);
  machine.SetVCpuCount(2);
  EXPECT_EQ(machine.vcpu_count(), 2);
}

TEST(SmpMachine, PerVcpuClocksAdvanceIndependently) {
  Machine machine;
  machine.SetVCpuCount(2);
  machine.ChargeCompute(1000);  // vCPU 0.
  machine.SwitchVCpu(1);
  machine.ChargeCompute(250);
  EXPECT_EQ(machine.clock_of(0).cycles(), 1000u);
  EXPECT_EQ(machine.clock_of(1).cycles(), 250u);
  EXPECT_EQ(machine.clock().cycles(), 250u);  // Current = vCPU 1.
  EXPECT_EQ(machine.max_cycles(), 1000u);
}

TEST(SmpMachine, AdvanceAllClocksMergesIdleTime) {
  Machine machine;
  machine.SetVCpuCount(3);
  machine.ChargeCompute(500);
  machine.AdvanceAllClocksTo(2000);
  for (int v = 0; v < 3; ++v) {
    EXPECT_EQ(machine.clock_of(v).cycles(), 2000u) << "vCPU " << v;
  }
}

TEST(SmpMachine, ChargeIpiCostsCyclesAndCounts) {
  Machine machine;
  machine.SetVCpuCount(2);
  const uint64_t before = machine.clock().cycles();
  machine.ChargeIpi();
  EXPECT_EQ(machine.clock().cycles() - before, machine.costs().ipi);
  EXPECT_EQ(machine.stats().ipi_count, 1u);
}

TEST(SmpMachine, CompartmentAffinityRoundTrips) {
  Machine machine;
  EXPECT_EQ(machine.CompartmentAffinityOf(0), -1);  // Unpinned default.
  machine.SetCompartmentAffinity(0, 1);
  EXPECT_EQ(machine.CompartmentAffinityOf(0), 1);
}

// --- Scheduler placement ----------------------------------------------------

TEST(SmpScheduler, PinnedThreadsOnlyRunOnTheirVcpu) {
  Machine machine;
  machine.SetVCpuCount(2);
  CoopScheduler sched(machine);
  std::vector<int> seen[2];
  for (int pin = 0; pin < 2; ++pin) {
    ASSERT_TRUE(sched.Spawn("pin" + std::to_string(pin),
                            [&, pin] {
                              for (int i = 0; i < 4; ++i) {
                                seen[pin].push_back(machine.current_vcpu());
                                machine.ChargeCompute(100);
                                sched.Yield();
                              }
                            },
                            pin)
                    .ok());
  }
  EXPECT_TRUE(sched.Run().ok());
  for (int pin = 0; pin < 2; ++pin) {
    ASSERT_EQ(seen[pin].size(), 4u);
    for (const int vcpu : seen[pin]) {
      EXPECT_EQ(vcpu, pin);
    }
  }
}

TEST(SmpScheduler, WorkStealingSpreadsUnpinnedThreads) {
  // All unpinned threads start on the spawner's run queue (vCPU 0); the
  // idle second vCPU must steal enough to advance its own clock.
  Machine machine;
  machine.SetVCpuCount(2);
  CoopScheduler sched(machine);
  bool saw_vcpu1 = false;
  for (int i = 0; i < 4; ++i) {
    ASSERT_TRUE(sched.Spawn("worker" + std::to_string(i), [&] {
      for (int k = 0; k < 8; ++k) {
        saw_vcpu1 = saw_vcpu1 || machine.current_vcpu() == 1;
        machine.ChargeCompute(500);
        sched.Yield();
      }
    }).ok());
  }
  EXPECT_TRUE(sched.Run().ok());
  EXPECT_TRUE(saw_vcpu1);
  EXPECT_GT(machine.clock_of(1).cycles(), 0u);
}

TEST(SmpScheduler, MigrationReinstallsProtectionKeyRegister) {
  // A thread that moves between vCPUs models a WRPKRU to reinstall its
  // protection-key state on the new core; a single-vCPU run of the same
  // workload must not pay it.
  const auto wrpkru_after_run = [](int vcpus) {
    Machine machine;
    machine.SetVCpuCount(vcpus);
    CoopScheduler sched(machine);
    for (int i = 0; i < 4; ++i) {
      EXPECT_TRUE(sched.Spawn("w" + std::to_string(i), [&] {
        for (int k = 0; k < 8; ++k) {
          machine.ChargeCompute(500);
          sched.Yield();
        }
      }).ok());
    }
    EXPECT_TRUE(sched.Run().ok());
    return machine.stats().wrpkru_count;
  };
  EXPECT_EQ(wrpkru_after_run(1), 0u);
  EXPECT_GT(wrpkru_after_run(2), 0u);
}

// --- Gates across vCPUs -----------------------------------------------------

TEST(SmpGates, CrossVcpuVmCallChargesIpi) {
  TestbedConfig config;
  config.image = TwoCompartmentConfig(IsolationBackend::kVmRpc);
  config.vcpus = 2;
  Testbed bed(config);
  // Net compartment serviced by vCPU 0; the app thread runs pinned on
  // vCPU 1, so every vm-rpc call is a cross-core notification.
  bed.machine().SetCompartmentAffinity(bed.image().CompartmentOf(kLibNet), 0);
  const RouteHandle route = bed.image().Resolve(kLibApp, kLibNet);
  bed.SpawnApp(
      "caller",
      [&] {
        for (int i = 0; i < 3; ++i) {
          bed.image().Call(route, [] {});
        }
      },
      /*affinity=*/1);
  EXPECT_TRUE(bed.Run().ok());
  // One notification per call: the request crosses to the pinned net VM;
  // the response returns to an unpinned caller (no explicit affinity, no
  // modeled IPI).
  EXPECT_EQ(bed.machine().stats().ipi_count, 3u);
}

TEST(SmpGates, SameVcpuVmCallChargesNoIpi) {
  TestbedConfig config;
  config.image = TwoCompartmentConfig(IsolationBackend::kVmRpc);
  config.vcpus = 2;
  Testbed bed(config);
  // Net on the boot vCPU, caller pinned there too: the workload calls and
  // the platform's device poll (always vCPU 0) all stay on-core.
  bed.machine().SetCompartmentAffinity(bed.image().CompartmentOf(kLibNet), 0);
  const RouteHandle route = bed.image().Resolve(kLibApp, kLibNet);
  bed.SpawnApp(
      "caller",
      [&] {
        for (int i = 0; i < 3; ++i) {
          bed.image().Call(route, [] {});
        }
      },
      /*affinity=*/0);
  EXPECT_TRUE(bed.Run().ok());
  EXPECT_EQ(bed.machine().stats().ipi_count, 0u);
}

TEST(SmpGates, MpkRouteHandleValidAcrossVcpus) {
  // One route resolved once, called from threads pinned to different
  // vCPUs: the cached route stays valid and every call is counted.
  TestbedConfig config;
  config.image = TwoCompartmentConfig(IsolationBackend::kMpkSharedStack);
  config.vcpus = 2;
  Testbed bed(config);
  const RouteHandle route = bed.image().Resolve(kLibApp, kLibNet);
  const uint64_t before = bed.machine().stats().gate_crossings;
  for (int pin = 0; pin < 2; ++pin) {
    bed.SpawnApp(
        "caller" + std::to_string(pin),
        [&] { bed.image().Call(route, [] {}); }, pin);
  }
  EXPECT_TRUE(bed.Run().ok());
  EXPECT_GE(bed.machine().stats().gate_crossings - before, 2u);
  EXPECT_EQ(bed.machine().stats().ipi_count, 0u);  // MPK gates never IPI.
}

TEST(SmpFault, QuarantineIsMachineGlobalAcrossVcpus) {
  // A compartment trapped by a thread on one vCPU must refuse admission
  // from every vCPU: quarantine is supervisor state, not per-core state.
  TestbedConfig config;
  config.image = TwoCompartmentConfig(IsolationBackend::kMpkSharedStack);
  config.vcpus = 2;
  config.supervise = true;
  Testbed bed(config);
  fault::FaultPlan plan;
  fault::FaultRule rule;
  rule.site = fault::FaultSite::kGateCross;
  rule.kind = fault::FaultKind::kProtectionFault;
  rule.compartment = bed.image().CompartmentOf(kLibNet);
  rule.count = 1;
  plan.rules = {rule};
  bed.machine().injector().LoadPlan(plan);

  const RouteHandle route = bed.image().Resolve(kLibApp, kLibNet);
  Status on_vcpu0 = Status::Ok();
  Status on_vcpu1 = Status::Ok();
  bed.SpawnApp(
      "faulter",
      [&] { on_vcpu0 = bed.image().TryCall(route, [] {}); },
      /*affinity=*/0);
  bed.SpawnApp(
      "bystander",
      [&] {
        bed.scheduler().Yield();  // Let the vCPU 0 thread trap first.
        on_vcpu1 = bed.image().TryCall(route, [] {});
      },
      /*affinity=*/1);
  EXPECT_TRUE(bed.Run().ok());
  EXPECT_EQ(on_vcpu0.code(), ErrorCode::kUnavailable);
  EXPECT_EQ(on_vcpu1.code(), ErrorCode::kUnavailable);
}

// --- Determinism and observability -----------------------------------------

// Fingerprint of one testbed run: everything the replay gate compares.
struct RunLog {
  std::vector<uint64_t> vcpu_cycles;
  uint64_t context_switches = 0;
  uint64_t wrpkru = 0;
  uint64_t crossings = 0;
  uint64_t ipis = 0;
  std::vector<std::string> trace;

  bool operator==(const RunLog& other) const {
    return vcpu_cycles == other.vcpu_cycles &&
           context_switches == other.context_switches &&
           wrpkru == other.wrpkru && crossings == other.crossings &&
           ipis == other.ipis && trace == other.trace;
  }
};

RunLog RunSeededWorkload(int vcpus, uint64_t seed) {
  TestbedConfig config;
  config.image = TwoCompartmentConfig(IsolationBackend::kMpkSharedStack);
  config.vcpus = vcpus;
  Testbed bed(config);
  Machine& machine = bed.machine();
  machine.tracer().SetEnabled(true);
  const RouteHandle route = bed.image().Resolve(kLibApp, kLibNet);
  for (int v = 0; v < vcpus; ++v) {
    uint64_t prng = seed ^ static_cast<uint64_t>(v * 2654435761u);
    bed.SpawnApp(
        "w" + std::to_string(v),
        [&bed, &machine, &route, prng]() mutable {
          for (int op = 0; op < 32; ++op) {
            prng = prng * 6364136223846793005ULL + 1442695040888963407ULL;
            bed.image().Call(route, [&machine, &prng] {
              machine.ChargeCompute(600 + prng % 512);
            });
            if ((op & 7) == 7) {
              bed.scheduler().Yield();
            }
          }
        },
        /*affinity=*/v);
  }
  EXPECT_TRUE(bed.Run().ok());

  RunLog log;
  for (int v = 0; v < vcpus; ++v) {
    log.vcpu_cycles.push_back(machine.clock_of(v).cycles());
  }
  log.context_switches = bed.scheduler().context_switches();
  log.wrpkru = machine.stats().wrpkru_count;
  log.crossings = machine.stats().gate_crossings;
  log.ipis = machine.stats().ipi_count;
  for (const obs::TraceEvent& event : machine.tracer().Snapshot()) {
    log.trace.push_back(std::to_string(event.ts_ns) + ":" +
                        std::to_string(event.dur_ns) + ":" +
                        std::to_string(event.vcpu) + ":" +
                        std::string(event.name));
  }
  return log;
}

TEST(SmpDeterminism, SameSeedSameVcpusReplaysIdentically) {
  for (const int vcpus : {1, 2, 4}) {
    const RunLog first = RunSeededWorkload(vcpus, 42);
    const RunLog second = RunSeededWorkload(vcpus, 42);
    EXPECT_TRUE(first == second) << vcpus << " vCPUs";
    EXPECT_FALSE(first.trace.empty());
  }
}

TEST(SmpDeterminism, SingleVcpuNeverTouchesSmpMachinery) {
  const RunLog log = RunSeededWorkload(1, 42);
  // MPK gates write PKRU on every crossing, so wrpkru_count is nonzero even
  // here; what a single-vCPU machine must never pay is the cross-core cost.
  EXPECT_EQ(log.ipis, 0u);
  for (const std::string& event : log.trace) {
    // ts:dur:vcpu:name — every event must sit on vCPU 0.
    const size_t second_colon = event.find(':', event.find(':') + 1);
    ASSERT_NE(second_colon, std::string::npos);
    EXPECT_EQ(event[second_colon + 1], '0') << event;
  }
}

TEST(SmpObs, TraceEventsCarryVcpuIds) {
  TestbedConfig config;
  config.image = TwoCompartmentConfig(IsolationBackend::kMpkSharedStack);
  config.vcpus = 2;
  Testbed bed(config);
  bed.machine().tracer().SetEnabled(true);
  const RouteHandle route = bed.image().Resolve(kLibApp, kLibNet);
  for (int pin = 0; pin < 2; ++pin) {
    bed.SpawnApp(
        "w" + std::to_string(pin),
        [&] { bed.image().Call(route, [] {}); }, pin);
  }
  EXPECT_TRUE(bed.Run().ok());
  bool saw[2] = {false, false};
  for (const obs::TraceEvent& event : bed.machine().tracer().Snapshot()) {
    if (event.vcpu < 2) {
      saw[event.vcpu] = true;
    }
  }
  EXPECT_TRUE(saw[0]);
  EXPECT_TRUE(saw[1]);
}

TEST(SmpObs, LaneAttributionConservesAcrossVcpus) {
  TestbedConfig config;
  config.image = TwoCompartmentConfig(IsolationBackend::kMpkSharedStack);
  config.vcpus = 2;
  config.profile = true;
  Testbed bed(config);
  Machine& machine = bed.machine();
  const RouteHandle route = bed.image().Resolve(kLibApp, kLibNet);
  for (int pin = 0; pin < 2; ++pin) {
    bed.SpawnApp(
        "w" + std::to_string(pin),
        [&] {
          for (int i = 0; i < 8; ++i) {
            bed.image().Call(route, [&] { machine.ChargeCompute(700); });
            bed.scheduler().Yield();
          }
        },
        pin);
  }
  EXPECT_TRUE(bed.Run().ok());
  machine.SyncAttribution();
  // Aggregate conservation: the per-lane totals partition the attributed
  // whole, and no lane attributes more than its own clock advanced.
  uint64_t lane_sum = 0;
  for (int v = 0; v < machine.vcpu_count(); ++v) {
    const uint64_t lane = machine.attrib().lane_attributed_cycles(v);
    EXPECT_LE(lane, machine.clock_of(v).cycles()) << "lane " << v;
    EXPECT_GT(lane, 0u) << "lane " << v;
    lane_sum += lane;
  }
  EXPECT_EQ(lane_sum, machine.attrib().attributed_cycles());
}

}  // namespace
}  // namespace flexos
