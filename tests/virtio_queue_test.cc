#include <gtest/gtest.h>

#include "libc/gstring.h"
#include "net/virtio_queue.h"
#include "support/rng.h"

namespace flexos {
namespace {

class VirtioQueueTest : public ::testing::Test {
 protected:
  static constexpr Gaddr kQueueBase = 0;
  static constexpr Gaddr kBuffers = 64 * 1024;

  VirtioQueueTest() {
    FLEXOS_CHECK(space_.Map(0, 1 << 20, 0).ok(), "map failed");
  }

  VirtioQueue MakeQueue(uint16_t depth) {
    Result<VirtioQueue> queue = VirtioQueue::Create(space_, kQueueBase, depth);
    FLEXOS_CHECK(queue.ok(), "queue create failed");
    return std::move(queue).value();
  }

  Machine machine_;
  AddressSpace space_{machine_, "vq-test", 2 << 20};
};

TEST_F(VirtioQueueTest, CreateValidates) {
  EXPECT_FALSE(VirtioQueue::Create(space_, 0, 0).ok());
  EXPECT_GT(VirtioQueue::FootprintBytes(8), 0u);
  EXPECT_GT(VirtioQueue::FootprintBytes(256),
            VirtioQueue::FootprintBytes(8));
}

TEST_F(VirtioQueueTest, DriverPostsDeviceSees) {
  VirtioQueue queue = MakeQueue(8);
  EXPECT_FALSE(queue.DeviceNextAvail().has_value());

  Result<uint16_t> id = queue.AddBuffer(kBuffers, 1500, true);
  ASSERT_TRUE(id.ok());
  queue.Kick();
  EXPECT_EQ(queue.kicks(), 1u);

  std::optional<VirtioQueue::DescRef> ref = queue.DeviceNextAvail();
  ASSERT_TRUE(ref.has_value());
  EXPECT_EQ(ref->desc_id, id.value());
  EXPECT_EQ(ref->addr, kBuffers);
  EXPECT_EQ(ref->len, 1500u);
  EXPECT_TRUE(ref->device_writable);
  EXPECT_FALSE(queue.DeviceNextAvail().has_value());  // Consumed.
}

TEST_F(VirtioQueueTest, UsedCompletionFreesDescriptor) {
  VirtioQueue queue = MakeQueue(2);
  EXPECT_EQ(queue.free_descriptors(), 2);
  const uint16_t a = queue.AddBuffer(kBuffers, 100, true).value();
  const uint16_t b = queue.AddBuffer(kBuffers + 100, 100, true).value();
  EXPECT_EQ(queue.free_descriptors(), 0);
  EXPECT_EQ(queue.AddBuffer(kBuffers, 1, true).code(),
            ErrorCode::kResourceExhausted);

  (void)queue.DeviceNextAvail();
  queue.DevicePushUsed(a, 60);
  std::optional<VirtioQueue::UsedElem> used = queue.PopUsed();
  ASSERT_TRUE(used.has_value());
  EXPECT_EQ(used->desc_id, a);
  EXPECT_EQ(used->written, 60u);
  EXPECT_EQ(queue.free_descriptors(), 1);
  EXPECT_FALSE(queue.PopUsed().has_value());
  (void)b;
}

TEST_F(VirtioQueueTest, RxPathMovesRealData) {
  // Driver posts an rx buffer; the device DMAs a frame into it; the driver
  // reaps it and reads exactly the written bytes.
  VirtioQueue queue = MakeQueue(4);
  const uint16_t id = queue.AddBuffer(kBuffers, 2048, true).value();
  queue.Kick();

  const std::string frame = "simulated ethernet frame payload";
  std::optional<VirtioQueue::DescRef> ref = queue.DeviceNextAvail();
  ASSERT_TRUE(ref.has_value());
  space_.Write(ref->addr, frame.data(), frame.size());
  queue.DevicePushUsed(ref->desc_id,
                       static_cast<uint32_t>(frame.size()));

  std::optional<VirtioQueue::UsedElem> used = queue.PopUsed();
  ASSERT_TRUE(used.has_value());
  EXPECT_EQ(used->desc_id, id);
  std::string got(used->written, '\0');
  space_.Read(kBuffers, got.data(), got.size());
  EXPECT_EQ(got, frame);
}

TEST_F(VirtioQueueTest, IndexWraparoundAfterManyCycles) {
  // u16 ring indices must wrap cleanly past 65535.
  VirtioQueue queue = MakeQueue(2);
  Rng rng(7);
  for (int cycle = 0; cycle < 70'000; ++cycle) {
    const uint32_t len = 1 + static_cast<uint32_t>(rng.NextBelow(512));
    const uint16_t id = queue.AddBuffer(kBuffers, len, true).value();
    std::optional<VirtioQueue::DescRef> ref = queue.DeviceNextAvail();
    ASSERT_TRUE(ref.has_value());
    ASSERT_EQ(ref->desc_id, id);
    ASSERT_EQ(ref->len, len);
    queue.DevicePushUsed(id, len / 2);
    std::optional<VirtioQueue::UsedElem> used = queue.PopUsed();
    ASSERT_TRUE(used.has_value());
    ASSERT_EQ(used->written, len / 2);
  }
}

TEST_F(VirtioQueueTest, InterleavedProduceConsume) {
  VirtioQueue queue = MakeQueue(8);
  Rng rng(99);
  int outstanding = 0;
  uint64_t posted = 0;
  uint64_t reaped = 0;
  for (int step = 0; step < 5000; ++step) {
    if (outstanding < 8 && rng.NextBool(0.6)) {
      if (queue.AddBuffer(kBuffers + 2048ull * (posted % 8), 2048, true)
              .ok()) {
        ++outstanding;
        ++posted;
      }
    } else {
      std::optional<VirtioQueue::DescRef> ref = queue.DeviceNextAvail();
      if (ref.has_value()) {
        queue.DevicePushUsed(ref->desc_id, 64);
        std::optional<VirtioQueue::UsedElem> used = queue.PopUsed();
        ASSERT_TRUE(used.has_value());
        --outstanding;
        ++reaped;
      }
    }
  }
  EXPECT_EQ(posted - reaped, static_cast<uint64_t>(outstanding));
  EXPECT_EQ(queue.free_descriptors(), 8 - outstanding);
}

TEST_F(VirtioQueueTest, ControlStructuresLiveInGuestMemoryAndAreProtected) {
  // The queue is guest data: retagging its pages locks the driver out —
  // the property that makes driver compartmentalization meaningful.
  VirtioQueue queue = MakeQueue(4);
  ASSERT_TRUE(space_.SetKey(0, kPageSize, 5).ok());
  machine_.context().pkru = Pkru::AllowAll().WithAccess(5, false, false);
  EXPECT_THROW((void)queue.AddBuffer(kBuffers, 64, true), TrapException);
  machine_.context().pkru = Pkru::AllowAll();
  EXPECT_TRUE(queue.AddBuffer(kBuffers, 64, true).ok());
}

}  // namespace
}  // namespace flexos
