// flexpath tests (DESIGN.md §15): critical-path reconstruction must
// reconcile exactly against the gate histograms, self-calibrate against
// core/gate_costs.h's predicted per-crossing cost on every backend, replay
// what-if scenarios with exact arithmetic, recover scheduler edges from the
// trace stream, and emit byte-deterministic flexos-critpath-v1 JSON.
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "core/gate_costs.h"
#include "core/image_builder.h"
#include "hw/clock.h"
#include "obs/critpath.h"
#include "obs/names.h"
#include "sched/coop_scheduler.h"

namespace flexos {
namespace {

ImageConfig NetAppConfig(IsolationBackend backend) {
  ImageConfig config;
  config.backend = backend;
  config.compartments = {{"net"}, {"app", "sched", "libc", "alloc"}};
  return config;
}

#ifndef FLEXOS_OBS_DISABLED

// Runs `calls` cached-route net->app crossings with tracing + attribution on
// and rebuilds the critical path. The machine must outlive the CriticalPath:
// the what-if engine keeps the cycles->ns conversion bound to its clock.
void BuildAfterCalls(Machine& machine, IsolationBackend backend, int calls,
                     obs::CriticalPath* out) {
  machine.tracer().SetEnabled(true);
  machine.attrib().SetEnabled(true, machine.clock().cycles());
  ImageBuilder builder(machine);
  auto image = builder.Build(NetAppConfig(backend)).value();
  const RouteHandle route = image->Resolve(kLibNet, kLibApp);
  uint64_t sink = 0;
  for (int i = 0; i < calls; ++i) {
    image->Call(route, [&sink] { ++sink; });
  }
  machine.SyncAttribution();
  const Clock& clock = machine.clock_of(0);
  out->Build(machine.attrib(), machine.metrics(),
             machine.tracer().Snapshot(),
             [&clock](uint64_t cycles) { return clock.CyclesToNanos(cycles); },
             machine.costs().ipi);
}

// Every backend's recorded gate nanoseconds must equal crossings times the
// cost model's predicted per-crossing cost — the profiler's view and
// core/gate_costs.h are the same number, not merely close.
TEST(CritpathTest, SelfCalibratesAgainstCostModelOnEveryBackend) {
  constexpr IsolationBackend kBackends[] = {
      IsolationBackend::kNone, IsolationBackend::kMpkSharedStack,
      IsolationBackend::kMpkSwitchedStack, IsolationBackend::kVmRpc};
  for (const IsolationBackend backend : kBackends) {
    Machine machine;
    obs::CriticalPath critpath;
    BuildAfterCalls(machine, backend, 50, &critpath);
    ASSERT_TRUE(critpath.reconciled())
        << IsolationBackendName(backend) << ": "
        << critpath.reconcile_detail();
    const uint64_t predicted_ns = machine.clock().CyclesToNanos(
        PredictedCrossingCycles(machine.costs(), backend, kGateArgBytes,
                                kGateRetBytes));
    ASSERT_FALSE(critpath.boundaries().empty());
    uint64_t crossings = 0;
    for (const obs::BoundaryShare& share : critpath.boundaries()) {
      EXPECT_EQ(share.gate_ns, share.crossings * predicted_ns)
          << share.boundary;
      EXPECT_EQ(share.path_gate_ns, share.gate_ns) << share.boundary;
      crossings += share.crossings;
    }
    EXPECT_GE(crossings, 50u);
  }
}

TEST(CritpathTest, WhatIfIsExactArithmeticAndIdentityOnCurrentBackend) {
  Machine machine;
  obs::CriticalPath critpath;
  BuildAfterCalls(machine, IsolationBackend::kMpkSharedStack, 40, &critpath);
  ASSERT_TRUE(critpath.reconciled()) << critpath.reconcile_detail();

  const obs::BoundaryShare* share = critpath.FindBoundary("c0.c1");
  ASSERT_NE(share, nullptr);
  EXPECT_EQ(share->backend, "mpk-shared");

  // Replaying the current backend's predicted cost reproduces the total.
  const uint64_t current = PredictedCrossingCycles(
      machine.costs(), IsolationBackend::kMpkSharedStack, kGateArgBytes,
      kGateRetBytes);
  EXPECT_EQ(critpath.WhatIfTotalNs(share->boundary, current),
            critpath.total_path_ns());

  // Promoting to vm-rpc follows the formula exactly.
  const uint64_t vm_cycles = PredictedCrossingCycles(
      machine.costs(), IsolationBackend::kVmRpc, kGateArgBytes,
      kGateRetBytes);
  const uint64_t expected = critpath.total_path_ns() - share->gate_ns +
                            share->crossings *
                                machine.clock().CyclesToNanos(vm_cycles);
  EXPECT_EQ(critpath.WhatIfTotalNs("c0.c1", vm_cycles), expected);

  // Unknown boundaries leave the total untouched.
  EXPECT_EQ(critpath.WhatIfTotalNs("no.such.boundary", vm_cycles),
            critpath.total_path_ns());
  EXPECT_EQ(critpath.FindBoundary("no-such"), nullptr);
  // Exact metric names resolve too.
  EXPECT_EQ(critpath.FindBoundary(share->boundary), share);
}

TEST(CritpathTest, ToJsonIsByteDeterministicAcrossIdenticalRuns) {
  std::string json[2];
  for (int run = 0; run < 2; ++run) {
    Machine machine;
    obs::CriticalPath critpath;
    BuildAfterCalls(machine, IsolationBackend::kMpkSwitchedStack, 25,
                    &critpath);
    json[run] = critpath.ToJson();
  }
  EXPECT_FALSE(json[0].empty());
  EXPECT_EQ(json[0], json[1]);
  EXPECT_NE(json[0].find("\"schema\":\"flexos-critpath-v1\""),
            std::string::npos);
  EXPECT_NE(json[0].find("\"reconciled\":true"), std::string::npos);
}

TEST(CritpathTest, RequestDecompositionSumsToWallAndCountsCrossings) {
  Machine machine;
  machine.tracer().SetEnabled(true);
  machine.attrib().SetEnabled(true, machine.clock().cycles());
  ImageBuilder builder(machine);
  auto image =
      builder.Build(NetAppConfig(IsolationBackend::kMpkSharedStack)).value();
  const RouteHandle route = image->Resolve(kLibNet, kLibApp);

  const obs::TraceContext ctx = machine.attrib().BeginRequest(
      "req:test", machine.clock().cycles(), machine.clock().NowNanos());
  ASSERT_TRUE(static_cast<bool>(ctx));
  uint64_t sink = 0;
  for (int i = 0; i < 10; ++i) {
    image->Call(route, [&sink] { ++sink; });
  }
  machine.attrib().EndRequest(ctx.id, machine.clock().cycles(),
                              machine.clock().NowNanos());
  machine.SyncAttribution();

  obs::CriticalPath critpath;
  const Clock& clock = machine.clock_of(0);
  critpath.Build(machine.attrib(), machine.metrics(),
                 machine.tracer().Snapshot(),
                 [&clock](uint64_t c) { return clock.CyclesToNanos(c); },
                 machine.costs().ipi);
  ASSERT_TRUE(critpath.reconciled()) << critpath.reconcile_detail();

  const obs::RequestPath* req = nullptr;
  for (const obs::RequestPath& path : critpath.requests()) {
    if (path.id == ctx.id) {
      req = &path;
    }
  }
  ASSERT_NE(req, nullptr);
  EXPECT_EQ(req->name, "req:test");
  EXPECT_EQ(req->crossings, 10u);
  // wall partitions exactly into the four path components.
  EXPECT_EQ(req->wall_ns, req->execute_ns + req->gate_ns +
                              req->queue_wait_ns + req->slack_ns);
  // Segment nanoseconds cover execute + gate + queue_wait (the IPI segment
  // is carved out of gate segments, never added on top).
  uint64_t segment_ns = 0;
  for (const obs::PathSegment& segment : req->segments) {
    segment_ns += segment.ns;
  }
  EXPECT_EQ(segment_ns,
            req->execute_ns + req->gate_ns + req->queue_wait_ns);
  // The request's gate share is visible in the boundary rows.
  const obs::BoundaryShare* share = critpath.FindBoundary("c0.c1");
  ASSERT_NE(share, nullptr);
  EXPECT_GE(share->path_gate_ns, req->gate_ns);
}

TEST(CritpathTest, RecoversSchedulerEdgesFromSyntheticTrace) {
  obs::Tracer tracer;
  tracer.SetEnabled(true);
  // Thread 5: ready 3 times but only switched in twice -> 2 queue edges
  // (the unpaired ready never became a wait). One steal, two IPIs.
  tracer.RecordInstant(obs::TraceCat::kSched, "sched.ready", 1, 5, 0);
  tracer.RecordInstant(obs::TraceCat::kSched, "sched.run_slice", 1, 5, 0);
  tracer.RecordInstant(obs::TraceCat::kSched, "sched.ready", 1, 5, 0);
  tracer.RecordInstant(obs::TraceCat::kSched, "sched.run_slice", 1, 5, 0);
  tracer.RecordInstant(obs::TraceCat::kSched, "sched.ready", 1, 5, 0);
  tracer.RecordInstant(obs::TraceCat::kSched, "sched.steal", 1, 5, 0);
  tracer.RecordInstant(obs::TraceCat::kSched, "sched.ipi", 0, 2, 0);
  tracer.RecordInstant(obs::TraceCat::kSched, "sched.ipi", 0, 2, 0);

  obs::Attributor attrib;
  obs::MetricsRegistry metrics;
  obs::CriticalPath critpath;
  critpath.Build(attrib, metrics, tracer.Snapshot(),
                 [](uint64_t c) { return c; }, /*ipi_cycles=*/1600);
  EXPECT_EQ(critpath.queue_edges(), 2u);
  EXPECT_EQ(critpath.steals(), 1u);
  EXPECT_EQ(critpath.ipis(), 2u);
  EXPECT_TRUE(critpath.reconciled());  // Nothing to reconcile is reconciled.
}

TEST(CritpathTest, SmpRunStampsStealAndIpiEdges) {
  Machine machine;
  machine.SetVCpuCount(2);
  machine.tracer().SetEnabled(true);
  // All unpinned threads spawn onto vCPU 0's queue; the idle second vCPU
  // must steal, stamping sched.steal instants the profiler picks up.
  CoopScheduler sched(machine);
  for (int i = 0; i < 4; ++i) {
    ASSERT_TRUE(sched.Spawn("w" + std::to_string(i),
                            [&] {
                              for (int k = 0; k < 3; ++k) {
                                machine.ChargeCompute(500);
                                sched.Yield();
                              }
                            })
                    .ok());
  }
  EXPECT_TRUE(sched.Run().ok());
  machine.ChargeIpi(1);

  obs::CriticalPath critpath;
  const Clock& clock = machine.clock_of(0);
  critpath.Build(machine.attrib(), machine.metrics(),
                 machine.tracer().Snapshot(),
                 [&clock](uint64_t c) { return clock.CyclesToNanos(c); },
                 machine.costs().ipi);
  EXPECT_GT(critpath.queue_edges(), 0u);
  EXPECT_GT(critpath.steals(), 0u);
  EXPECT_EQ(critpath.ipis(), 1u);
}

#else  // FLEXOS_OBS_DISABLED

// Stub contract: the disabled CriticalPath compiles against the same call
// sites, records nothing, and stays "reconciled".
TEST(CritpathDisabledTest, StubIsInertButLinkable) {
  Machine machine;
  ImageBuilder builder(machine);
  auto image =
      builder.Build(NetAppConfig(IsolationBackend::kMpkSharedStack)).value();
  const RouteHandle route = image->Resolve(kLibNet, kLibApp);
  image->Call(route, [] {});

  obs::CriticalPath critpath;
  const Clock& clock = machine.clock_of(0);
  critpath.Build(machine.attrib(), machine.metrics(),
                 machine.tracer().Snapshot(),
                 [&clock](uint64_t c) { return clock.CyclesToNanos(c); },
                 machine.costs().ipi);
  EXPECT_TRUE(critpath.reconciled());
  EXPECT_TRUE(critpath.requests().empty());
  EXPECT_TRUE(critpath.boundaries().empty());
  EXPECT_EQ(critpath.total_path_ns(), 0u);
  EXPECT_EQ(critpath.ToJson(), "{}");
}

#endif  // FLEXOS_OBS_DISABLED

}  // namespace
}  // namespace flexos
