#include <gtest/gtest.h>

#include "core/explorer.h"

namespace flexos {
namespace {

std::vector<LibraryMeta> StandardLibs() {
  return {AppMeta("app"), NetStackMeta(), SchedulerMeta(), LibcMeta(),
          AllocMeta()};
}

WorkloadProfile StandardProfile() {
  WorkloadProfile profile;
  profile.cross_lib_calls_per_op = 16;
  profile.memop_bytes_per_op = {256, 1460, 0, 2920, 64};
  profile.allocs_per_op = 3;
  return profile;
}

TEST(Explorer, GateRoundTripOrdering) {
  const CostModel costs;
  EXPECT_LT(GateRoundTripCycles(IsolationBackend::kNone, costs),
            GateRoundTripCycles(IsolationBackend::kMpkSharedStack, costs));
  EXPECT_LT(GateRoundTripCycles(IsolationBackend::kMpkSharedStack, costs),
            GateRoundTripCycles(IsolationBackend::kMpkSwitchedStack, costs));
  EXPECT_LT(GateRoundTripCycles(IsolationBackend::kMpkSwitchedStack, costs),
            GateRoundTripCycles(IsolationBackend::kVmRpc, costs));
}

TEST(Explorer, ProducesRankedCandidates) {
  const auto ranked = ExploreDesignSpace(
      StandardLibs(), ShAnalysis{},
      {IsolationBackend::kNone, IsolationBackend::kMpkSharedStack,
       IsolationBackend::kMpkSwitchedStack, IsolationBackend::kVmRpc},
      StandardProfile(), CostModel{}, ExplorationQuery{});
  ASSERT_FALSE(ranked.empty());
  // Strategy 2 (no budget): sorted by ascending cost.
  for (size_t i = 1; i < ranked.size(); ++i) {
    EXPECT_LE(ranked[i - 1].estimate.cycles_per_op,
              ranked[i].estimate.cycles_per_op);
  }
}

TEST(Explorer, BudgetFiltersAndRanksBySecurity) {
  ExplorationQuery query;
  query.max_cycles_per_op = 60'000;
  const auto ranked = ExploreDesignSpace(
      StandardLibs(), ShAnalysis{},
      {IsolationBackend::kNone, IsolationBackend::kMpkSharedStack,
       IsolationBackend::kVmRpc},
      StandardProfile(), CostModel{}, query);
  ASSERT_FALSE(ranked.empty());
  for (const RankedConfig& candidate : ranked) {
    EXPECT_LE(candidate.estimate.cycles_per_op, 60'000);
  }
  for (size_t i = 1; i < ranked.size(); ++i) {
    EXPECT_GE(ranked[i - 1].estimate.security_score,
              ranked[i].estimate.security_score);
  }
}

TEST(Explorer, UnsafeLibForcesIsolationOrHardening) {
  std::vector<LibraryMeta> libs = StandardLibs();
  libs.push_back(UnsafeCLibMeta("legacy"));
  ExplorationQuery query;
  query.require_unsafe_isolated = true;
  const auto ranked = ExploreDesignSpace(
      libs, ShAnalysis{}, {IsolationBackend::kMpkSharedStack},
      StandardProfile(), CostModel{}, query);
  ASSERT_FALSE(ranked.empty());
  for (const RankedConfig& candidate : ranked) {
    const Deployment& deployment = candidate.config.deployment;
    for (size_t i = 0; i < deployment.chosen.size(); ++i) {
      if (!deployment.chosen[i].meta.behavior.writes_all) {
        continue;
      }
      // Any still-unsafe library must sit alone.
      for (size_t j = 0; j < deployment.chosen.size(); ++j) {
        if (i != j) {
          EXPECT_NE(deployment.coloring.color_of[i],
                    deployment.coloring.color_of[j]);
        }
      }
    }
  }
}

TEST(Explorer, StrongerBackendScoresHigherAtSameLayout) {
  const auto libs = StandardLibs();
  const auto variants = EnumerateShVariants(libs, ShAnalysis{});
  std::vector<LibraryMeta> metas;
  for (const auto& options : variants) {
    metas.push_back(options[0].meta);
  }
  Deployment deployment;
  for (const auto& options : variants) {
    deployment.chosen.push_back(options[0]);
  }
  deployment.coloring = ColorGraphExact(
      static_cast<int>(metas.size()), ConflictEdges(metas));

  const CandidateConfig mpk{.deployment = deployment,
                            .backend = IsolationBackend::kMpkSharedStack};
  const CandidateConfig vm{.deployment = deployment,
                           .backend = IsolationBackend::kVmRpc};
  const auto profile = StandardProfile();
  const CostModel costs;
  const ConfigEstimate mpk_estimate = EstimateConfig(mpk, profile, costs);
  const ConfigEstimate vm_estimate = EstimateConfig(vm, profile, costs);
  if (deployment.coloring.num_colors > 1) {
    EXPECT_GT(vm_estimate.security_score, mpk_estimate.security_score);
    EXPECT_GT(vm_estimate.cycles_per_op, mpk_estimate.cycles_per_op);
  }
}

TEST(Explorer, DescribeNamesLibsAndHardening) {
  std::vector<LibraryMeta> libs = {SchedulerMeta(), UnsafeCLibMeta("c")};
  const auto variants = EnumerateShVariants(libs, ShAnalysis{});
  const auto deployments = EnumerateDeployments(variants, true);
  for (const Deployment& deployment : deployments) {
    CandidateConfig config{.deployment = deployment,
                           .backend = IsolationBackend::kMpkSharedStack};
    const std::string text = config.Describe({"sched", "c"});
    EXPECT_NE(text.find("sched"), std::string::npos);
    if (deployment.num_hardened() > 0) {
      EXPECT_NE(text.find("+SH"), std::string::npos);
    }
  }
}

}  // namespace
}  // namespace flexos
