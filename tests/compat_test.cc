#include <gtest/gtest.h>

#include "core/compat.h"

namespace flexos {
namespace {

TEST(Compat, PaperExampleSchedulerVsUnsafeC) {
  // Paper §2: "these two libraries cannot be run in the same compartment"
  // because the C component may write to all memory while the verified
  // scheduler requires others not to write its own memory.
  const LibraryMeta sched = SchedulerMeta();
  const LibraryMeta unsafe = UnsafeCLibMeta("clib");
  const CompatVerdict verdict = CanShareCompartment(sched, unsafe);
  EXPECT_FALSE(verdict.compatible);
  ASSERT_FALSE(verdict.violations.empty());
}

TEST(Compat, TwoLibsWithoutRequiresAlwaysCompatible) {
  // Paper §2: "If both libraries have no Requires clause, the answer is
  // yes."
  const LibraryMeta a = UnsafeCLibMeta("a");
  const LibraryMeta b = UnsafeCLibMeta("b");
  EXPECT_TRUE(CanShareCompartment(a, b).compatible);
}

TEST(Compat, WellBehavedLibSatisfiesScheduler) {
  const LibraryMeta sched = SchedulerMeta();
  Result<LibraryMeta> polite = ParseLibraryMeta(
      "polite",
      "[Memory access] Read(Own,Shared); Write(Own,Shared)\n"
      "[Call] sched::thread_add, sched::yield");
  ASSERT_TRUE(polite.ok());
  EXPECT_TRUE(CanShareCompartment(sched, polite.value()).compatible);
}

TEST(Compat, DisallowedCallIntoHolderRejected) {
  const LibraryMeta sched = SchedulerMeta();
  Result<LibraryMeta> caller = ParseLibraryMeta(
      "caller",
      "[Memory access] Read(Own); Write(Own)\n"
      "[Call] sched::internal_secret");
  ASSERT_TRUE(caller.ok());
  const CompatVerdict verdict = CanShareCompartment(sched, caller.value());
  EXPECT_FALSE(verdict.compatible);
}

TEST(Compat, CallsIntoOtherLibsIgnoredByHolder) {
  const LibraryMeta sched = SchedulerMeta();
  Result<LibraryMeta> caller = ParseLibraryMeta(
      "caller",
      "[Memory access] Read(Own); Write(Own)\n"
      "[Call] alloc::malloc, net::listen");
  ASSERT_TRUE(caller.ok());
  EXPECT_TRUE(CanShareCompartment(sched, caller.value()).compatible);
}

TEST(Compat, ReadsAllViolatesConfidentiality) {
  Result<LibraryMeta> secretive = ParseLibraryMeta(
      "secretive",
      "[Memory access] Read(Own); Write(Own)\n"
      "[Requires] *(Write,Shared)");  // No *(Read,Own): others must not read.
  Result<LibraryMeta> spy = ParseLibraryMeta(
      "spy", "[Memory access] Read(*); Write(Own)");
  ASSERT_TRUE(secretive.ok() && spy.ok());
  EXPECT_FALSE(
      CanShareCompartment(secretive.value(), spy.value()).compatible);
}

TEST(Compat, SharedWritePolicyEnforced) {
  Result<LibraryMeta> strict = ParseLibraryMeta(
      "strict",
      "[Memory access] Read(Own,Shared); Write(Own)\n"
      "[Requires] *(Read,Own), *(Read,Shared)");  // No shared writes.
  Result<LibraryMeta> writer = ParseLibraryMeta(
      "writer", "[Memory access] Read(Shared); Write(Shared)");
  ASSERT_TRUE(strict.ok() && writer.ok());
  EXPECT_FALSE(
      CanShareCompartment(strict.value(), writer.value()).compatible);
}

TEST(Compat, ConflictEdgesMatchPairwiseChecks) {
  std::vector<LibraryMeta> libs = {SchedulerMeta(), UnsafeCLibMeta("c1"),
                                   UnsafeCLibMeta("c2"), LibcMeta()};
  const auto edges = ConflictEdges(libs);
  for (const auto& [i, j] : edges) {
    EXPECT_FALSE(CanShareCompartment(libs[static_cast<size_t>(i)],
                                     libs[static_cast<size_t>(j)])
                     .compatible);
  }
  // sched-c1, sched-c2, libc-c1, libc-c2 conflict; c1-c2 and sched-libc ok.
  EXPECT_EQ(edges.size(), 4u);
}

TEST(Compat, DirectionalityMatters) {
  // unsafe violates sched's requires, but sched does not violate unsafe's
  // (it has none).
  const CompatVerdict forward =
      SatisfiesRequires(SchedulerMeta(), UnsafeCLibMeta("c"));
  const CompatVerdict backward =
      SatisfiesRequires(UnsafeCLibMeta("c"), SchedulerMeta());
  EXPECT_FALSE(forward.compatible);
  EXPECT_TRUE(backward.compatible);
}

}  // namespace
}  // namespace flexos
