// Observability layer tests (PR 3): histogram bucket math, trace ring
// semantics, exporter schemas, the log bridge, and end-to-end metric
// recording through a built image.
#include <cctype>
#include <cstring>
#include <map>
#include <memory>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "apps/iperf_client.h"
#include "apps/iperf_server.h"
#include "apps/testbed.h"
#include "core/image_builder.h"
#include "hw/clock.h"
#include "obs/attrib.h"
#include "obs/export.h"
#include "obs/metrics.h"
#include "obs/names.h"
#include "obs/trace.h"
#include "support/log.h"

namespace flexos {
namespace {

using obs::LatencyHistogram;

// ---------------------------------------------------------------------------
// Minimal recursive-descent JSON parser, just enough to validate exporter
// output structurally (objects, arrays, strings, numbers, bools, null).

struct JsonValue {
  enum Kind { kNull, kBool, kNumber, kString, kArray, kObject } kind = kNull;
  bool boolean = false;
  double number = 0;
  std::string str;
  std::vector<JsonValue> items;
  std::map<std::string, JsonValue> fields;

  const JsonValue* Get(const std::string& key) const {
    auto it = fields.find(key);
    return it == fields.end() ? nullptr : &it->second;
  }
};

class JsonParser {
 public:
  explicit JsonParser(std::string_view text) : text_(text) {}

  bool Parse(JsonValue* out) {
    const bool ok = ParseValue(out);
    SkipSpace();
    return ok && pos_ == text_.size();
  }

 private:
  void SkipSpace() {
    while (pos_ < text_.size() &&
           std::isspace(static_cast<unsigned char>(text_[pos_]))) {
      ++pos_;
    }
  }
  bool Consume(char c) {
    SkipSpace();
    if (pos_ < text_.size() && text_[pos_] == c) {
      ++pos_;
      return true;
    }
    return false;
  }
  bool ParseString(std::string* out) {
    SkipSpace();
    if (pos_ >= text_.size() || text_[pos_] != '"') {
      return false;
    }
    ++pos_;
    out->clear();
    while (pos_ < text_.size() && text_[pos_] != '"') {
      char c = text_[pos_++];
      if (c == '\\') {
        if (pos_ >= text_.size()) {
          return false;
        }
        const char esc = text_[pos_++];
        switch (esc) {
          case '"': c = '"'; break;
          case '\\': c = '\\'; break;
          case '/': c = '/'; break;
          case 'n': c = '\n'; break;
          case 'r': c = '\r'; break;
          case 't': c = '\t'; break;
          case 'b': c = '\b'; break;
          case 'f': c = '\f'; break;
          case 'u': {
            if (pos_ + 4 > text_.size()) {
              return false;
            }
            pos_ += 4;  // Validated as hex by strtol below? Keep simple.
            c = '?';
            break;
          }
          default:
            return false;
        }
      }
      out->push_back(c);
    }
    if (pos_ >= text_.size()) {
      return false;
    }
    ++pos_;  // Closing quote.
    return true;
  }
  bool ParseValue(JsonValue* out) {
    SkipSpace();
    if (pos_ >= text_.size()) {
      return false;
    }
    const char c = text_[pos_];
    if (c == '{') {
      ++pos_;
      out->kind = JsonValue::kObject;
      SkipSpace();
      if (Consume('}')) {
        return true;
      }
      while (true) {
        std::string key;
        if (!ParseString(&key) || !Consume(':')) {
          return false;
        }
        JsonValue value;
        if (!ParseValue(&value)) {
          return false;
        }
        out->fields.emplace(std::move(key), std::move(value));
        if (Consume('}')) {
          return true;
        }
        if (!Consume(',')) {
          return false;
        }
      }
    }
    if (c == '[') {
      ++pos_;
      out->kind = JsonValue::kArray;
      SkipSpace();
      if (Consume(']')) {
        return true;
      }
      while (true) {
        JsonValue value;
        if (!ParseValue(&value)) {
          return false;
        }
        out->items.push_back(std::move(value));
        if (Consume(']')) {
          return true;
        }
        if (!Consume(',')) {
          return false;
        }
      }
    }
    if (c == '"') {
      out->kind = JsonValue::kString;
      return ParseString(&out->str);
    }
    if (text_.compare(pos_, 4, "true") == 0) {
      out->kind = JsonValue::kBool;
      out->boolean = true;
      pos_ += 4;
      return true;
    }
    if (text_.compare(pos_, 5, "false") == 0) {
      out->kind = JsonValue::kBool;
      pos_ += 5;
      return true;
    }
    if (text_.compare(pos_, 4, "null") == 0) {
      pos_ += 4;
      return true;
    }
    // Number.
    size_t end = pos_;
    while (end < text_.size() &&
           (std::isdigit(static_cast<unsigned char>(text_[end])) ||
            text_[end] == '-' || text_[end] == '+' || text_[end] == '.' ||
            text_[end] == 'e' || text_[end] == 'E')) {
      ++end;
    }
    if (end == pos_) {
      return false;
    }
    out->kind = JsonValue::kNumber;
    out->number = std::stod(std::string(text_.substr(pos_, end - pos_)));
    pos_ = end;
    return true;
  }

  std::string_view text_;
  size_t pos_ = 0;
};

// ---------------------------------------------------------------------------
// Histogram bucket math.

TEST(LatencyHistogramTest, ExactBucketsForSmallValues) {
  for (uint64_t v = 0; v < LatencyHistogram::kLinearBuckets; ++v) {
    EXPECT_EQ(LatencyHistogram::BucketIndex(v), static_cast<int>(v));
    EXPECT_EQ(LatencyHistogram::BucketLowerBound(static_cast<int>(v)), v);
  }
}

TEST(LatencyHistogramTest, BucketEdges) {
  // Every bucket's lower bound must map back to that bucket, and the value
  // one below it to the previous bucket.
  for (int i = 1; i < LatencyHistogram::kOverflowBucket; ++i) {
    const uint64_t lo = LatencyHistogram::BucketLowerBound(i);
    EXPECT_EQ(LatencyHistogram::BucketIndex(lo), i) << "lo=" << lo;
    EXPECT_EQ(LatencyHistogram::BucketIndex(lo - 1), i - 1) << "lo=" << lo;
  }
}

TEST(LatencyHistogramTest, SubBucketWidths) {
  // In [2^e, 2^(e+1)) there are exactly 4 sub-buckets of width 2^(e-2).
  EXPECT_EQ(LatencyHistogram::BucketIndex(8), 8);
  EXPECT_EQ(LatencyHistogram::BucketIndex(9), 8);   // [8, 10)
  EXPECT_EQ(LatencyHistogram::BucketIndex(10), 9);  // [10, 12)
  EXPECT_EQ(LatencyHistogram::BucketIndex(12), 10);
  EXPECT_EQ(LatencyHistogram::BucketIndex(14), 11);
  EXPECT_EQ(LatencyHistogram::BucketIndex(15), 11);
  EXPECT_EQ(LatencyHistogram::BucketIndex(16), 12);
}

TEST(LatencyHistogramTest, OverflowBucket) {
  const uint64_t first_overflow = uint64_t{1}
                                  << (LatencyHistogram::kMaxExp + 1);
  EXPECT_EQ(LatencyHistogram::BucketIndex(first_overflow),
            LatencyHistogram::kOverflowBucket);
  EXPECT_EQ(LatencyHistogram::BucketIndex(first_overflow - 1),
            LatencyHistogram::kOverflowBucket - 1);
  EXPECT_EQ(LatencyHistogram::BucketIndex(UINT64_MAX),
            LatencyHistogram::kOverflowBucket);

  LatencyHistogram hist;
  hist.Record(first_overflow + 123);
  EXPECT_EQ(hist.overflow(), 1u);
  EXPECT_EQ(hist.max(), first_overflow + 123);
  // Overflow ranks report the exact max, not a bucket bound.
  EXPECT_EQ(hist.Percentile(100), first_overflow + 123);
}

TEST(LatencyHistogramTest, PercentilesOnUniformData) {
  LatencyHistogram hist;
  for (uint64_t v = 1; v <= 100; ++v) {
    hist.Record(v);
  }
  EXPECT_EQ(hist.count(), 100u);
  EXPECT_EQ(hist.sum(), 5050u);
  EXPECT_EQ(hist.min(), 1u);
  EXPECT_EQ(hist.max(), 100u);
  // Rank 50 is value 50, in bucket [48, 56) -> reports 48.
  EXPECT_EQ(hist.Percentile(50), 48u);
  // Rank 99 is value 99, in bucket [96, 112) -> reports 96.
  EXPECT_EQ(hist.Percentile(99), 96u);
  // Reported percentiles never exceed the observed max.
  EXPECT_LE(hist.Percentile(100), 100u);
}

TEST(LatencyHistogramTest, PercentileClampsToMinAndEmptyIsZero) {
  LatencyHistogram hist;
  EXPECT_EQ(hist.Percentile(50), 0u);
  hist.Record(9);  // Bucket [8, 10): lower bound 8 < min 9.
  EXPECT_EQ(hist.Percentile(50), 9u);
}

TEST(LatencyHistogramTest, EmptyPercentilesAreZero) {
  const LatencyHistogram hist;
  EXPECT_EQ(hist.Percentile(0), 0u);
  EXPECT_EQ(hist.Percentile(50), 0u);
  EXPECT_EQ(hist.Percentile(99), 0u);
  EXPECT_EQ(hist.Percentile(100), 0u);
  EXPECT_EQ(hist.count(), 0u);
  EXPECT_EQ(hist.min(), 0u);
  EXPECT_EQ(hist.max(), 0u);
}

TEST(LatencyHistogramTest, SingleSamplePercentiles) {
  // One sample: every rank must resolve to it. 1000 lands in log bucket
  // [896, 1024), whose lower bound is below the sample; the [min, max]
  // clamp restores the exact value.
  LatencyHistogram hist;
  hist.Record(1000);
  EXPECT_EQ(hist.count(), 1u);
  EXPECT_EQ(hist.Percentile(0), 1000u);
  EXPECT_EQ(hist.Percentile(50), 1000u);
  EXPECT_EQ(hist.Percentile(99), 1000u);
  EXPECT_EQ(hist.Percentile(100), 1000u);
}

TEST(LatencyHistogramTest, MaxBucketSaturation) {
  // Everything past 2^(kMaxExp+1) shares the overflow bucket; percentiles
  // that land there report the exact observed max, never a bucket bound.
  const uint64_t first_overflow = uint64_t{1}
                                  << (LatencyHistogram::kMaxExp + 1);
  LatencyHistogram hist;
  for (uint64_t i = 1; i <= 10; ++i) {
    hist.Record(first_overflow * i);
  }
  EXPECT_EQ(hist.count(), 10u);
  EXPECT_EQ(hist.overflow(), 10u);
  EXPECT_EQ(hist.min(), first_overflow);
  EXPECT_EQ(hist.max(), first_overflow * 10);
  EXPECT_EQ(hist.Percentile(1), first_overflow * 10);
  EXPECT_EQ(hist.Percentile(50), first_overflow * 10);
  EXPECT_EQ(hist.Percentile(100), first_overflow * 10);

  // Mixed: one in-range sample keeps p1 out of the overflow bucket.
  hist.Record(5);
  EXPECT_EQ(hist.Percentile(1), 5u);
  EXPECT_EQ(hist.Percentile(99), first_overflow * 10);
}

TEST(ClockTest, CyclesToNanosExactAtHistogramBucketBoundaries) {
  // The division-free CyclesToNanos feeds gate latency values straight into
  // histogram Record; a one-off at a bucket's lower bound would flip the
  // sample into the neighboring bucket. Check exact floor semantics at
  // every bucket edge (and one on each side) across several frequencies,
  // including ones where 1e9/freq is not an integer.
  const uint64_t freqs[] = {Clock::kDefaultFreqHz, 1'000'000'000ULL,
                            2'500'000'000ULL, 3'333'333'333ULL};
  for (const uint64_t freq : freqs) {
    const Clock clock(freq);
    for (int i = 0; i <= LatencyHistogram::kOverflowBucket; ++i) {
      const uint64_t lo = LatencyHistogram::BucketLowerBound(i);
      for (const uint64_t cycles : {lo == 0 ? 0 : lo - 1, lo, lo + 1}) {
        const uint64_t exact = static_cast<uint64_t>(
            static_cast<unsigned __int128>(cycles) * 1'000'000'000ULL /
            freq);
        ASSERT_EQ(clock.CyclesToNanos(cycles), exact)
            << "freq=" << freq << " bucket=" << i << " cycles=" << cycles;
      }
    }
  }
}

TEST(LatencyHistogramTest, ResetClearsEverything) {
  LatencyHistogram hist;
  hist.Record(5);
  hist.Record(uint64_t{1} << 42);
  hist.Reset();
  EXPECT_EQ(hist.count(), 0u);
  EXPECT_EQ(hist.sum(), 0u);
  EXPECT_EQ(hist.min(), 0u);
  EXPECT_EQ(hist.max(), 0u);
  EXPECT_EQ(hist.overflow(), 0u);
  EXPECT_EQ(hist.Percentile(99), 0u);
}

// ---------------------------------------------------------------------------
// Window arithmetic (flexwatch, DESIGN.md §14).

TEST(LatencyHistogramTest, DeltaSubtractsBucketsCountAndSum) {
  LatencyHistogram hist;
  hist.Record(10);
  hist.Record(20);
  const LatencyHistogram prev = hist;  // Snapshot after 2 samples.
  hist.Record(30);
  hist.Record(40);
  hist.Record(40);

  const LatencyHistogram delta = LatencyHistogram::Delta(hist, prev);
  EXPECT_EQ(delta.count(), 3u);
  EXPECT_EQ(delta.sum(), 110u);
  EXPECT_EQ(delta.bucket(LatencyHistogram::BucketIndex(40)), 2u);
  EXPECT_EQ(delta.bucket(LatencyHistogram::BucketIndex(10)), 0u);
}

TEST(LatencyHistogramTest, DeltaAgainstEmptyPrevIsExactCopy) {
  LatencyHistogram hist;
  hist.Record(5);
  hist.Record(123456);
  const LatencyHistogram delta =
      LatencyHistogram::Delta(hist, LatencyHistogram());
  EXPECT_EQ(delta.count(), 2u);
  EXPECT_EQ(delta.min(), 5u);       // Exact: first window copies cur.
  EXPECT_EQ(delta.max(), 123456u);
  EXPECT_EQ(delta.Percentile(1), 5u);
}

TEST(LatencyHistogramTest, DeltaOfUnchangedHistogramIsEmpty) {
  LatencyHistogram hist;
  hist.Record(99);
  const LatencyHistogram delta = LatencyHistogram::Delta(hist, hist);
  EXPECT_EQ(delta.count(), 0u);
  EXPECT_EQ(delta.sum(), 0u);
  EXPECT_EQ(delta.Percentile(99), 0u);
}

TEST(LatencyHistogramTest, DeltaTracksNewExtremesExactly) {
  LatencyHistogram hist;
  hist.Record(100);
  const LatencyHistogram prev = hist;
  hist.Record(7);        // New cumulative min this window.
  hist.Record(1000000);  // New cumulative max this window.
  const LatencyHistogram delta = LatencyHistogram::Delta(hist, prev);
  EXPECT_EQ(delta.count(), 2u);
  EXPECT_EQ(delta.min(), 7u);        // Moved extremes are exact.
  EXPECT_EQ(delta.max(), 1000000u);
}

TEST(LatencyHistogramTest, DeltaBoundsUnmovedExtremesByBucket) {
  LatencyHistogram hist;
  hist.Record(1);       // Cumulative min.
  hist.Record(900000);  // Cumulative max.
  const LatencyHistogram prev = hist;
  hist.Record(100);  // Interior sample: neither extreme moved.
  const LatencyHistogram delta = LatencyHistogram::Delta(hist, prev);
  EXPECT_EQ(delta.count(), 1u);
  EXPECT_EQ(delta.sum(), 100u);
  // Bucket-bounded: within one sub-bucket of the true value (100).
  EXPECT_LE(delta.min(), 100u);
  EXPECT_GE(delta.min(), LatencyHistogram::BucketLowerBound(
                             LatencyHistogram::BucketIndex(100)));
  EXPECT_GE(delta.max(), 100u);
  EXPECT_LE(delta.min(), delta.max());
}

TEST(LatencyHistogramTest, DeltaAfterResetReturnsCurAsIs) {
  LatencyHistogram hist;
  hist.Record(50);
  hist.Record(60);
  const LatencyHistogram prev = hist;
  hist.Reset();
  hist.Record(5);
  const LatencyHistogram delta = LatencyHistogram::Delta(hist, prev);
  EXPECT_EQ(delta.count(), 1u);  // cur, not a bogus negative window.
  EXPECT_EQ(delta.sum(), 5u);
}

TEST(LatencyHistogramTest, PerWindowPercentilesDivergeFromCumulative) {
  // A latency regression in the second window: the cumulative histogram
  // averages it away, the window delta pins it.
  LatencyHistogram hist;
  for (int i = 0; i < 1000; ++i) {
    hist.Record(8);
  }
  const LatencyHistogram prev = hist;
  for (int i = 0; i < 10; ++i) {
    hist.Record(500000);
  }
  const LatencyHistogram window = LatencyHistogram::Delta(hist, prev);
  EXPECT_EQ(window.count(), 10u);
  EXPECT_GE(window.Percentile(50), 262144u);  // All slow in-window.
  EXPECT_EQ(hist.Percentile(99), 8u);  // Cumulative hides the regression.
  EXPECT_EQ(window.count() + prev.count(), hist.count());
  EXPECT_EQ(window.sum() + prev.sum(), hist.sum());
}

TEST(LatencyHistogramTest, DeltaHandlesOverflowBucket) {
  LatencyHistogram hist;
  hist.Record(10);
  const LatencyHistogram prev = hist;
  const uint64_t huge = uint64_t{1} << 43;  // Past kMaxExp: overflow.
  hist.Record(huge);
  const LatencyHistogram delta = LatencyHistogram::Delta(hist, prev);
  EXPECT_EQ(delta.count(), 1u);
  EXPECT_EQ(delta.overflow(), 1u);
  EXPECT_EQ(delta.max(), huge);  // Overflow deltas report the exact max.
  EXPECT_EQ(delta.Percentile(99), huge);
}

// ---------------------------------------------------------------------------
// Registry.

TEST(MetricsRegistryTest, FindOrCreateReturnsStableReferences) {
  obs::MetricsRegistry registry;
  obs::Counter& a = registry.GetCounter("x.count");
  a.Add(3);
  // Force rebalancing with more registrations; the reference must survive.
  for (int i = 0; i < 100; ++i) {
    registry.GetCounter("c" + std::to_string(i));
  }
  EXPECT_EQ(&registry.GetCounter("x.count"), &a);
  EXPECT_EQ(registry.CounterValue("x.count"), 3u);
  EXPECT_EQ(registry.CounterValue("never.registered"), 0u);
  EXPECT_EQ(registry.FindHistogram("x.count"), nullptr);
}

TEST(MetricsRegistryTest, EntriesSortedByName) {
  obs::MetricsRegistry registry;
  registry.GetHistogram("b.hist");
  registry.GetCounter("a.count");
  registry.GetGauge("c.gauge");
  const auto entries = registry.Entries();
  ASSERT_EQ(entries.size(), 3u);
  EXPECT_EQ(entries[0].name, "a.count");
  EXPECT_EQ(entries[1].name, "b.hist");
  EXPECT_EQ(entries[2].name, "c.gauge");
  EXPECT_NE(entries[0].counter, nullptr);
  EXPECT_NE(entries[1].histogram, nullptr);
  EXPECT_NE(entries[2].gauge, nullptr);
}

TEST(MetricNamesTest, GateMetricNameRoundTrips) {
  const std::string name = obs::GateMetricName("crossings", "mpk-shared",
                                               /*from_comp=*/-1,
                                               /*to_comp=*/2);
  EXPECT_EQ(name, "gate.crossings.mpk-shared.platform.c2");
  obs::GateMetricParts parts;
  ASSERT_TRUE(obs::ParseGateMetricName(name, &parts));
  EXPECT_EQ(parts.family, "crossings");
  EXPECT_EQ(parts.backend, "mpk-shared");
  EXPECT_EQ(parts.from, "platform");
  EXPECT_EQ(parts.to, "c2");
}

TEST(MetricNamesTest, ParseRejectsNonGateNames) {
  obs::GateMetricParts parts;
  EXPECT_FALSE(obs::ParseGateMetricName("sched.context_switches", &parts));
  EXPECT_FALSE(obs::ParseGateMetricName("gate.crossings.mpk", &parts));
  EXPECT_FALSE(obs::ParseGateMetricName("gate.a.b.c.d.e", &parts));
  EXPECT_FALSE(obs::ParseGateMetricName("gate..mpk.c0.c1", &parts));
}

// ---------------------------------------------------------------------------
// Trace ring.

TEST(TraceBufferTest, WraparoundKeepsNewestAndCountsDropped) {
  obs::TraceBuffer ring(4);
  for (uint64_t i = 0; i < 6; ++i) {
    obs::TraceEvent event;
    event.ts_ns = i;
    ring.Push(event);
  }
  EXPECT_EQ(ring.pushed(), 6u);
  EXPECT_EQ(ring.dropped(), 2u);
  std::vector<obs::TraceEvent> out;
  ring.AppendTo(&out);
  ASSERT_EQ(out.size(), 4u);
  for (size_t i = 0; i < out.size(); ++i) {
    EXPECT_EQ(out[i].ts_ns, i + 2);  // Oldest two overwritten.
  }
}

TEST(TraceBufferTest, NoDropsBelowCapacity) {
  obs::TraceBuffer ring(8);
  for (uint64_t i = 0; i < 8; ++i) {
    ring.Push(obs::TraceEvent{});
  }
  EXPECT_EQ(ring.dropped(), 0u);
}

TEST(TracerTest, DisabledRecordsNothing) {
  obs::Tracer tracer(16);
  EXPECT_FALSE(tracer.enabled());
  tracer.RecordInstant(obs::TraceCat::kNet, "x", 0);
  tracer.RecordComplete(obs::TraceCat::kGate, "y", 0, 1, 0);
  EXPECT_TRUE(tracer.Snapshot().empty());
}

TEST(TraceEventTest, SetTextTruncatesSafely) {
  obs::TraceEvent event;
  event.SetText(std::string(200, 'x'));
  EXPECT_EQ(std::strlen(event.text), sizeof(event.text) - 1);
  event.SetText("short");
  EXPECT_STREQ(event.text, "short");
}

// Live-Tracer behavior; compiled out when this tree stubs the tracer
// (tests/obs_disabled_test.cc covers the stub contract instead).
#ifndef FLEXOS_OBS_DISABLED

TEST(TracerTest, SnapshotSortedByTimestamp) {
  obs::Tracer tracer(16);
  tracer.SetEnabled(true);
  tracer.RecordComplete(obs::TraceCat::kGate, "b", /*ts_ns=*/30, 1, 0);
  tracer.RecordComplete(obs::TraceCat::kGate, "a", /*ts_ns=*/10, 1, 0);
  tracer.RecordInstant(obs::TraceCat::kNet, "c", 0);  // NowNs() == 0.
  const auto events = tracer.Snapshot();
  ASSERT_EQ(events.size(), 3u);
  EXPECT_STREQ(events[0].name, "c");
  EXPECT_STREQ(events[1].name, "a");
  EXPECT_STREQ(events[2].name, "b");
}

TEST(TracerTest, RingWrapCountsDroppedEvents) {
  obs::Tracer tracer(/*capacity_per_thread=*/4);
  tracer.SetEnabled(true);
  for (int i = 0; i < 10; ++i) {
    tracer.RecordInstant(obs::TraceCat::kAlloc, "e", 0);
  }
  EXPECT_EQ(tracer.Snapshot().size(), 4u);
  EXPECT_EQ(tracer.DroppedEvents(), 6u);
  EXPECT_EQ(tracer.buffer_count(), 1u);
}

TEST(TracerTest, MessageCarriesTruncatedText) {
  obs::Tracer tracer(4);
  tracer.SetEnabled(true);
  const std::string longmsg(200, 'x');
  tracer.RecordMessage(obs::TraceCat::kLog, "log.warn", longmsg, 0);
  const auto events = tracer.Snapshot();
  ASSERT_EQ(events.size(), 1u);
  EXPECT_EQ(std::strlen(events[0].text), sizeof(events[0].text) - 1);
}

#endif  // FLEXOS_OBS_DISABLED

// ---------------------------------------------------------------------------
// Exporters.

TEST(ExportTest, JsonEscape) {
  EXPECT_EQ(obs::JsonEscape("plain"), "plain");
  EXPECT_EQ(obs::JsonEscape("a\"b\\c"), "a\\\"b\\\\c");
  EXPECT_EQ(obs::JsonEscape("x\ny"), "x\\ny");
  EXPECT_EQ(obs::JsonEscape(std::string_view("\x01", 1)), "\\u0001");
}

TEST(ExportTest, MetricsJsonParsesAndCarriesValues) {
  obs::MetricsRegistry registry;
  registry.GetCounter("net.frames").Add(7);
  registry.GetGauge("alloc.live").Set(-5);
  obs::LatencyHistogram& hist = registry.GetHistogram("gate.lat");
  for (uint64_t v = 1; v <= 100; ++v) {
    hist.Record(v);
  }
  JsonValue root;
  ASSERT_TRUE(JsonParser(obs::MetricsToJson(registry)).Parse(&root));
  ASSERT_EQ(root.kind, JsonValue::kObject);

  const JsonValue* counters = root.Get("counters");
  ASSERT_NE(counters, nullptr);
  ASSERT_NE(counters->Get("net.frames"), nullptr);
  EXPECT_EQ(counters->Get("net.frames")->number, 7);

  const JsonValue* gauges = root.Get("gauges");
  ASSERT_NE(gauges, nullptr);
  EXPECT_EQ(gauges->Get("alloc.live")->number, -5);

  const JsonValue* histograms = root.Get("histograms");
  ASSERT_NE(histograms, nullptr);
  const JsonValue* lat = histograms->Get("gate.lat");
  ASSERT_NE(lat, nullptr);
  EXPECT_EQ(lat->Get("count")->number, 100);
  EXPECT_EQ(lat->Get("p50")->number, 48);
  EXPECT_EQ(lat->Get("p99")->number, 96);
  EXPECT_EQ(lat->Get("max")->number, 100);
}

// Validates the Chrome trace-event contract Perfetto relies on: object
// wrapper with a traceEvents array; every event has name/cat/ph/pid/tid/ts;
// "X" events carry dur, "i" events carry scope "s".
void ValidateChromeTrace(const std::string& json, size_t expect_events) {
  JsonValue root;
  ASSERT_TRUE(JsonParser(json).Parse(&root)) << json;
  ASSERT_EQ(root.kind, JsonValue::kObject);
  const JsonValue* events = root.Get("traceEvents");
  ASSERT_NE(events, nullptr);
  ASSERT_EQ(events->kind, JsonValue::kArray);
  EXPECT_EQ(events->items.size(), expect_events);
  for (const JsonValue& event : events->items) {
    ASSERT_EQ(event.kind, JsonValue::kObject);
    ASSERT_NE(event.Get("name"), nullptr);
    ASSERT_NE(event.Get("cat"), nullptr);
    ASSERT_NE(event.Get("pid"), nullptr);
    ASSERT_NE(event.Get("tid"), nullptr);
    ASSERT_NE(event.Get("ts"), nullptr);
    const JsonValue* ph = event.Get("ph");
    ASSERT_NE(ph, nullptr);
    if (ph->str == "X") {
      EXPECT_NE(event.Get("dur"), nullptr);
    } else if (ph->str == "i") {
      ASSERT_NE(event.Get("s"), nullptr);
      EXPECT_EQ(event.Get("s")->str, "t");
    } else {
      FAIL() << "unexpected phase " << ph->str;
    }
  }
}

TEST(ExportTest, ChromeTraceSchema) {
  // Built from plain TraceEvent data so the exporter contract is checked
  // in both the enabled and FLEXOS_OBS_DISABLED builds.
  std::vector<obs::TraceEvent> events;
  obs::TraceEvent span;
  span.ts_ns = 1500;
  span.dur_ns = 250;
  span.a0 = 64;
  span.a1 = 16;
  span.name = "mpk-shared-stack";
  span.tid = 2;
  span.cat = obs::TraceCat::kGate;
  span.phase = obs::TracePhase::kComplete;
  events.push_back(span);
  obs::TraceEvent instant;
  instant.ts_ns = 2000;
  instant.a0 = 4096;
  instant.name = "alloc.alloc";
  instant.tid = 1;
  instant.cat = obs::TraceCat::kAlloc;
  instant.phase = obs::TracePhase::kInstant;
  events.push_back(instant);
  obs::TraceEvent message;
  message.ts_ns = 2500;
  message.name = "log.warn";
  message.cat = obs::TraceCat::kLog;
  message.phase = obs::TracePhase::kInstant;
  message.SetText("msg \"quoted\"");
  events.push_back(message);

  const std::string json = obs::TraceToChromeJson(events);
  ValidateChromeTrace(json, 3);
  // Timestamps are microseconds: 1500 ns -> 1.5 us.
  EXPECT_NE(json.find("\"ts\":1.500"), std::string::npos) << json;
  EXPECT_NE(json.find("\"dur\":0.250"), std::string::npos) << json;
  // The inline text payload survives as an escaped "msg" arg.
  EXPECT_NE(json.find("\\\"quoted\\\""), std::string::npos) << json;
}

TEST(ExportTest, EmptyTraceIsValid) {
  ValidateChromeTrace(obs::TraceToChromeJson({}), 0);
}

TEST(ExportTest, MetricsJsonIsDeterministicallyOrdered) {
  // flexstat --metrics/--json output diffs cleanly run-to-run: metrics are
  // emitted in name order regardless of registration order.
  obs::MetricsRegistry registry;
  registry.GetCounter("z.last").Add(1);
  registry.GetCounter("a.first").Add(2);
  registry.GetGauge("m.middle").Set(3);
  registry.GetHistogram("b.second").Record(4);
  const std::string json = obs::MetricsToJson(registry);
  EXPECT_EQ(json, obs::MetricsToJson(registry));
  EXPECT_LT(json.find("a.first"), json.find("z.last"));
  EXPECT_LT(json.find("a.first"), json.find("b.second"));
  JsonValue root;
  ASSERT_TRUE(JsonParser(json).Parse(&root));
}

// ---------------------------------------------------------------------------
// Log bridge.

struct CapturedLog {
  std::vector<std::string> messages;
  std::vector<LogLevel> levels;
};

TEST(LogBridgeTest, SinkReceivesRecordsAndTracerMirrorsWarnings) {
  // The Machine installs itself as the active tracer.
  Machine machine;
  machine.tracer().SetEnabled(true);

  CapturedLog captured;
  SetLogSink(
      [](const LogRecord& record, void* ctx) {
        auto* out = static_cast<CapturedLog*>(ctx);
        out->messages.emplace_back(record.message);
        out->levels.push_back(record.level);
      },
      &captured);
  const LogLevel saved = GetLogLevel();
  SetLogLevel(LogLevel::kInfo);

  FLEXOS_INFO("hello %d", 42);
  FLEXOS_WARN("watch out %s", "now");

  SetLogLevel(saved);
  SetLogSink(nullptr, nullptr);

  ASSERT_EQ(captured.messages.size(), 2u);
  EXPECT_EQ(captured.messages[0], "hello 42");
  EXPECT_EQ(captured.levels[0], LogLevel::kInfo);
  EXPECT_EQ(captured.messages[1], "watch out now");

#ifndef FLEXOS_OBS_DISABLED
  // Only the warn+ line is mirrored into the trace.
  const auto events = machine.tracer().Snapshot();
  ASSERT_EQ(events.size(), 1u);
  EXPECT_STREQ(events[0].name, "log.warn");
  EXPECT_STREQ(events[0].text, "watch out now");
  EXPECT_EQ(events[0].cat, obs::TraceCat::kLog);
#endif
}

TEST(LogBridgeTest, LogLevelKnobIsReadBack) {
  const LogLevel saved = GetLogLevel();
  SetLogLevel(LogLevel::kError);
  EXPECT_EQ(GetLogLevel(), LogLevel::kError);
  SetLogLevel(saved);
}

// ---------------------------------------------------------------------------
// End-to-end: a built image records per-boundary metrics and gate spans.

TEST(ObsIntegrationTest, ImageCallPopulatesBoundaryMetrics) {
  Machine machine;
  ImageBuilder builder(machine);
  ImageConfig config;
  config.backend = IsolationBackend::kMpkSharedStack;
  config.compartments = {{"net"}, {"app", "sched", "libc", "alloc"}};
  auto image = builder.Build(config).value();

  const RouteHandle route = image->Resolve(kLibNet, kLibApp);
  int calls = 0;
  for (int i = 0; i < 10; ++i) {
    image->Call(route, [&] { ++calls; });
  }
  EXPECT_EQ(calls, 10);

  const std::string crossings = obs::GateMetricName(
      "crossings", "mpk-shared", route.from_comp, route.to_comp);
  EXPECT_EQ(machine.metrics().CounterValue(crossings), 10u);

  const std::string latency = obs::GateMetricName(
      "latency_ns", "mpk-shared", route.from_comp, route.to_comp);
  const obs::LatencyHistogram* hist =
      machine.metrics().FindHistogram(latency);
  ASSERT_NE(hist, nullptr);
  EXPECT_EQ(hist->count(), 10u);
  EXPECT_GT(hist->Percentile(50), 0u);

  // The legacy stats() view reads the same numbers.
  const auto it = image->stats().crossings.find(
      std::make_pair(route.from_comp, route.to_comp));
  ASSERT_NE(it, image->stats().crossings.end());
  EXPECT_EQ(it->second.crossings, 10u);
}

#ifndef FLEXOS_OBS_DISABLED
TEST(ObsIntegrationTest, GateSpansTracedWhenEnabled) {
  Machine machine;
  machine.tracer().SetEnabled(true);
  ImageBuilder builder(machine);
  ImageConfig config;
  config.backend = IsolationBackend::kMpkSharedStack;
  config.compartments = {{"net"}, {"app", "sched", "libc", "alloc"}};
  auto image = builder.Build(config).value();

  const RouteHandle route = image->Resolve(kLibNet, kLibApp);
  image->Call(route, [] {});

  bool saw_gate_span = false;
  for (const obs::TraceEvent& event : machine.tracer().Snapshot()) {
    if (event.cat == obs::TraceCat::kGate &&
        event.phase == obs::TracePhase::kComplete) {
      saw_gate_span = true;
      EXPECT_EQ(event.tid, route.to_comp + 1);
    }
  }
  EXPECT_TRUE(saw_gate_span);
}
#endif  // FLEXOS_OBS_DISABLED

// ---------------------------------------------------------------------------
// Attributor: exact cycle attribution and request accounting (PR 4). Live
// implementation only; tests/obs_disabled_test.cc covers the stub contract.
#ifndef FLEXOS_OBS_DISABLED

TEST(AttributorTest, ChargesNestedFramesAndConserves) {
  obs::Attributor attrib;
  attrib.SetEnabled(true, 100);
  attrib.ActivateThread(1, "worker", 100);
  attrib.PushFrame("app", 1, 100);
  attrib.PushFrame("net", 0, 150);           // 50 cycles in app.
  attrib.PushGateFrame("mpk-shared", 160);   // 10 cycles in net.
  attrib.PopFrame(180);                      // 20 cycles in the gate.
  attrib.PopFrame(200);                      // 20 more in net.
  attrib.PopFrame(230);                      // 30 more in app.
  attrib.Sync(250);                          // 20 at thread base.

  // Conservation: every cycle elapsed while enabled lands in exactly one
  // flame bucket.
  EXPECT_EQ(attrib.attributed_cycles(), 150u);
  uint64_t flame_total = 0;
  for (const obs::FlameEntry& entry : attrib.Flame()) {
    flame_total += entry.cycles;
  }
  EXPECT_EQ(flame_total, 150u);

  const std::map<int, uint64_t> comp = attrib.CompartmentCycles();
  EXPECT_EQ(comp.at(1), 80u);   // app frames.
  EXPECT_EQ(comp.at(0), 30u);   // net frames.
  EXPECT_EQ(comp.at(-1), 20u);  // thread base (no lib frame).
  EXPECT_EQ(attrib.BackendGateCycles().at("mpk-shared"), 20u);

  const std::string stacks = attrib.CollapsedStacks();
  EXPECT_NE(stacks.find("worker;app;net;gate:mpk-shared 20\n"),
            std::string::npos)
      << stacks;
  EXPECT_NE(stacks.find("worker;app 80\n"), std::string::npos) << stacks;
}

TEST(AttributorTest, RequestSplitsExecuteQueueWaitAndGateOverhead) {
  obs::Attributor attrib;
  attrib.SetEnabled(true, 0);
  attrib.ActivateThread(1, "server", 0);
  const obs::TraceContext ctx = attrib.BeginRequest("tcp:5001", 0, 1000);
  EXPECT_EQ(ctx.id, 1u);
  EXPECT_TRUE(static_cast<bool>(ctx));
  EXPECT_EQ(attrib.current_request(), 1u);

  attrib.PushFrame("net", 0, 0);
  attrib.PushGateFrame("vm-rpc", 40);   // 40 executing in net.
  attrib.PopFrame(70);                  // 30 in the gate.
  attrib.OnGateCrossing("vm-rpc", 0, 1, 55);
  attrib.PopFrame(100);                 // 30 more in net.

  // Descheduled from 100 to 160: queue wait, not execute.
  attrib.ActivateThread(0, "platform", 100);
  attrib.ActivateThread(1, "server", 160);
  attrib.EndRequest(ctx.id, 200, 5000);  // 40 more execute at thread base.
  attrib.Sync(200);
  EXPECT_EQ(attrib.current_request(), 0u);

  const obs::RequestRecord* req = attrib.FindRequest(ctx.id);
  ASSERT_NE(req, nullptr);
  EXPECT_FALSE(req->open);
  EXPECT_EQ(req->name, "tcp:5001");
  EXPECT_EQ(req->start_ns, 1000u);
  EXPECT_EQ(req->end_ns, 5000u);
  EXPECT_EQ(req->WallNanos(), 4000u);
  EXPECT_EQ(req->execute_cycles, 140u);
  EXPECT_EQ(req->gate_cycles, 30u);
  EXPECT_EQ(req->queue_wait_cycles, 60u);
  EXPECT_EQ(req->crossings, 1u);

  // Per-compartment body cycles plus gate halves partition execute exactly.
  uint64_t comp_total = 0;
  for (const auto& [comp, cycles] : req->comp_cycles) {
    comp_total += cycles;
  }
  EXPECT_EQ(comp_total + req->gate_cycles, req->execute_cycles);

  const std::string boundary =
      obs::GateMetricName("latency_ns", "vm-rpc", 0, 1);
  ASSERT_EQ(req->boundary_gate_ns.count(boundary), 1u);
  EXPECT_EQ(req->boundary_gate_ns.at(boundary), 55u);
}

TEST(AttributorTest, CrossingsOutsideRequestsChargeUnattributedRecord) {
  obs::Attributor attrib;
  attrib.SetEnabled(true, 0);
  attrib.OnGateCrossing("none", -1, 0, 17);
  attrib.OnGateCrossing("none", -1, 0, 3);
  EXPECT_EQ(attrib.requests_started(), 0u);

  const obs::RequestRecord* unattributed =
      attrib.FindRequest(obs::kUnattributedRequestId);
  ASSERT_NE(unattributed, nullptr);
  EXPECT_EQ(unattributed->crossings, 2u);
  const std::string boundary =
      obs::GateMetricName("latency_ns", "none", -1, 0);
  EXPECT_EQ(unattributed->boundary_gate_ns.at(boundary), 20u);
  // The unattributed record leads the sorted request list.
  const auto requests = attrib.Requests();
  ASSERT_FALSE(requests.empty());
  EXPECT_EQ(requests.front()->id, obs::kUnattributedRequestId);
}

TEST(AttributorTest, DisabledRecordsNothing) {
  obs::Attributor attrib;
  EXPECT_FALSE(attrib.enabled());
  attrib.ActivateThread(1, "t", 10);
  attrib.PushFrame("app", 1, 20);
  attrib.PopFrame(30);
  attrib.OnGateCrossing("none", 0, 1, 5);
  attrib.Sync(100);
  EXPECT_EQ(attrib.attributed_cycles(), 0u);
  EXPECT_TRUE(attrib.Flame().empty());
  EXPECT_FALSE(static_cast<bool>(attrib.BeginRequest("r", 0, 0)));
}

// Acceptance: run a real iperf transfer with the profiler on and reconcile
// the request view against the metrics registry — summing boundary gate
// overhead over all request records (including the unattributed record)
// must reproduce the gate.latency_ns.* histogram sums exactly, and every
// cycle elapsed while enabled must be attributed exactly once.
TEST(ObsIntegrationTest, IperfRequestReconcilesWithGateHistograms) {
  TestbedConfig config;
  config.image.backend = IsolationBackend::kMpkSharedStack;
  config.image.compartments = {{"net"}, {"app", "sched", "libc", "alloc"}};
  config.profile = true;  // Attributor enabled at the end of boot.
  Testbed bed(config);
  obs::Attributor& attrib = bed.machine().attrib();
  ASSERT_TRUE(attrib.enabled());
  const uint64_t epoch = bed.machine().clock().cycles();

  constexpr uint64_t kBytes = 256 * 1024;
  IperfServerResult server_result;
  SpawnIperfServer(bed, IperfServerOptions{}, &server_result);
  IperfRemoteClient client(kBytes);
  RemoteTcpPeer peer(bed.machine(), bed.link(), RemoteTcpConfig{}, client);
  bed.AddPeer(&peer);
  peer.Connect();
  ASSERT_TRUE(bed.Run().ok());
  ASSERT_EQ(server_result.bytes_received, kBytes);

  const uint64_t end = bed.machine().clock().cycles();
  attrib.Sync(end);

  // Conservation invariant.
  EXPECT_EQ(attrib.attributed_cycles(), end - epoch);
  uint64_t flame_total = 0;
  for (const obs::FlameEntry& entry : attrib.Flame()) {
    flame_total += entry.cycles;
  }
  EXPECT_EQ(flame_total, end - epoch);
  uint64_t comp_total = 0;
  for (const auto& [comp, cycles] : attrib.CompartmentCycles()) {
    comp_total += cycles;
  }
  uint64_t backend_total = 0;
  for (const auto& [backend, cycles] : attrib.BackendGateCycles()) {
    backend_total += cycles;
  }
  EXPECT_EQ(comp_total + backend_total, end - epoch);
  EXPECT_GT(backend_total, 0u);

  // The accepted connection minted request 1 and Close ended it.
  const obs::RequestRecord* req = attrib.FindRequest(1);
  ASSERT_NE(req, nullptr);
  EXPECT_FALSE(req->open);
  EXPECT_EQ(req->name, "tcp:5001");
  EXPECT_GT(req->execute_cycles, 0u);
  EXPECT_GT(req->queue_wait_cycles, 0u);
  EXPECT_GT(req->crossings, 0u);
  uint64_t req_comp_total = 0;
  for (const auto& [comp, cycles] : req->comp_cycles) {
    req_comp_total += cycles;
  }
  EXPECT_EQ(req_comp_total + req->gate_cycles, req->execute_cycles);

  // Boundary reconciliation: request records vs. latency histograms.
  std::map<std::string, uint64_t> request_sums;
  uint64_t request_crossings = 0;
  for (const obs::RequestRecord* record : attrib.Requests()) {
    for (const auto& [boundary, ns] : record->boundary_gate_ns) {
      request_sums[boundary] += ns;
    }
    request_crossings += record->crossings;
  }
  std::map<std::string, uint64_t> histogram_sums;
  uint64_t histogram_crossings = 0;
  for (const auto& entry : bed.machine().metrics().Entries()) {
    obs::GateMetricParts parts;
    if (!obs::ParseGateMetricName(entry.name, &parts)) {
      continue;
    }
    if (parts.family == "latency_ns" && entry.histogram != nullptr &&
        entry.histogram->count() > 0) {
      histogram_sums[std::string(entry.name)] = entry.histogram->sum();
    }
    if (parts.family == "crossings" && entry.counter != nullptr) {
      histogram_crossings += entry.counter->value();
    }
  }
  EXPECT_FALSE(histogram_sums.empty());
  EXPECT_EQ(request_sums, histogram_sums);
  EXPECT_EQ(request_crossings, histogram_crossings);
}

#endif  // FLEXOS_OBS_DISABLED

// ---------------------------------------------------------------------------
// Per-vCPU gate counters: the ".v<N>" split (image.cc) appends a fifth
// dot-field after "gate.", which ParseGateMetricName must keep rejecting —
// any scan that sums "crossings" over accepted names would otherwise count
// every crossing twice (aggregate + per-vCPU split).

TEST(MetricNamesTest, RejectsPerVCpuFifthDotField) {
  obs::GateMetricParts parts;
  const std::string aggregate =
      obs::GateMetricName("crossings", "mpk-shared", 0, 1);
  ASSERT_TRUE(obs::ParseGateMetricName(aggregate, &parts));
  EXPECT_FALSE(obs::ParseGateMetricName(aggregate + ".v0", &parts));
  EXPECT_FALSE(obs::ParseGateMetricName(aggregate + ".v17", &parts));
  EXPECT_FALSE(obs::ParseGateMetricName(
      "gate.latency_ns.vm-rpc.platform.c2.v1", &parts));
}

TEST(MetricNamesTest, PerVCpuSplitNeverDoubleCountsInScans) {
  obs::MetricsRegistry registry;
  const std::string aggregate =
      obs::GateMetricName("crossings", "mpk-shared", 0, 1);
  registry.GetCounter(aggregate).Add(10);
  registry.GetCounter(aggregate + ".v0").Add(6);
  registry.GetCounter(aggregate + ".v1").Add(4);

  uint64_t scanned = 0;
  for (const auto& entry : registry.Entries()) {
    obs::GateMetricParts parts;
    if (entry.counter != nullptr &&
        obs::ParseGateMetricName(entry.name, &parts) &&
        parts.family == "crossings") {
      scanned += entry.counter->value();
    }
  }
  EXPECT_EQ(scanned, 10u);  // Aggregate only; .v0/.v1 are display splits.
}

// ---------------------------------------------------------------------------
// Exporter edge cases.

TEST(ExportTest, PrometheusNameEscapingAndLeadingDigit) {
  obs::MetricsRegistry registry;
  registry.GetCounter("gate.latency_ns.mpk-shared.c0.c1").Add(1);
  registry.GetCounter("0weird name%").Add(2);
  const std::string out = obs::MetricsToPrometheus(registry);
  EXPECT_NE(out.find("# TYPE gate_latency_ns_mpk_shared_c0_c1 counter"),
            std::string::npos);
  EXPECT_NE(out.find("gate_latency_ns_mpk_shared_c0_c1 1"),
            std::string::npos);
  // Names may not start with a digit in the 0.0.4 exposition format: the
  // sanitizer prepends '_', and no exposition line may begin with a digit.
  EXPECT_NE(out.find("_0weird_name_ 2"), std::string::npos);
  size_t line_start = 0;
  while (line_start < out.size()) {
    EXPECT_FALSE(std::isdigit(static_cast<unsigned char>(out[line_start])))
        << "line starts with a digit at offset " << line_start;
    const size_t nl = out.find('\n', line_start);
    if (nl == std::string::npos) {
      break;
    }
    line_start = nl + 1;
  }
}

TEST(ExportTest, EmptyRegistryExportsAreValid) {
  obs::MetricsRegistry registry;
  EXPECT_EQ(obs::MetricsToPrometheus(registry), "");
  const std::string json = obs::MetricsToJson(registry);
  JsonValue root;
  ASSERT_TRUE(JsonParser(json).Parse(&root));
  ASSERT_EQ(root.kind, JsonValue::kObject);
  const JsonValue* counters = root.Get("counters");
  ASSERT_NE(counters, nullptr);
  EXPECT_TRUE(counters->fields.empty());
}

TEST(ExportTest, TimelineRoundTripsByteIdentical) {
  std::vector<obs::WindowSnapshot> windows(2);
  windows[0].seq = 1;
  windows[0].start_cycles = 0;
  windows[0].end_cycles = 1000;
  windows[0].counters.push_back({"gate.crossings.none.c0.c1", 7});
  windows[0].gauges.push_back({"alloc.bytes_live", -3});
  obs::WindowHistSample hist;
  hist.name = "gate.latency_ns.none.c0.c1";
  for (uint64_t v = 1; v <= 9; ++v) {
    hist.delta.Record(v * 100);
  }
  windows[0].histograms.push_back(hist);
  windows[1].seq = 2;
  windows[1].start_cycles = 1000;
  windows[1].end_cycles = 2000;
  windows[1].counters.push_back({"gate.crossings.none.c0.c1", 2});

  const std::string json = obs::TimelineToJson(windows, 1000);
  obs::TimelineDoc doc;
  std::string error;
  ASSERT_TRUE(obs::TimelineFromJson(json, &doc, &error)) << error;
  EXPECT_EQ(doc.window_cycles, 1000u);
  ASSERT_EQ(doc.windows.size(), 2u);
  EXPECT_EQ(doc.windows[0].seq, 1u);
  ASSERT_EQ(doc.windows[0].counters.size(), 1u);
  EXPECT_EQ(doc.windows[0].counters[0].first, "gate.crossings.none.c0.c1");
  EXPECT_EQ(doc.windows[0].counters[0].second, 7u);
  ASSERT_EQ(doc.windows[0].gauges.size(), 1u);
  EXPECT_EQ(doc.windows[0].gauges[0].second, -3);
  ASSERT_EQ(doc.windows[0].histograms.size(), 1u);
  EXPECT_EQ(doc.windows[0].histograms[0].second.count, 9u);
  // The diff reader's re-serialization must be byte-identical to what the
  // exporter wrote, so tooling can diff timelines without a lossy hop.
  EXPECT_EQ(obs::TimelineDocToJson(doc), json);
}

TEST(ExportTest, TimelineFromJsonRejectsBadInput) {
  obs::TimelineDoc doc;
  std::string error;
  EXPECT_FALSE(obs::TimelineFromJson("not json", &doc, &error));
  EXPECT_NE(error.find("malformed"), std::string::npos);
  EXPECT_FALSE(obs::TimelineFromJson("{\"windows\":[]}", &doc, &error));
  EXPECT_NE(error.find("no \"schema\""), std::string::npos);
  EXPECT_FALSE(obs::TimelineFromJson(
      "{\"schema\":\"flexos-timeline-v2\",\"windows\":[]}", &doc, &error));
  EXPECT_NE(error.find("flexos-timeline-v1"), std::string::npos);
}

TEST(ObsIntegrationTest, BatchedCallsRecordBatchedCounter) {
  Machine machine;
  ImageBuilder builder(machine);
  ImageConfig config;
  config.backend = IsolationBackend::kMpkSharedStack;
  config.compartments = {{"net"}, {"app", "sched", "libc", "alloc"}};
  auto image = builder.Build(config).value();

  const RouteHandle route = image->Resolve(kLibNet, kLibApp);
  {
    GateBatch batch(*image, route);
    for (int i = 0; i < 5; ++i) {
      batch.Run([] {});
    }
  }
  const std::string batched = obs::GateMetricName(
      "batched", "mpk-shared", route.from_comp, route.to_comp);
  EXPECT_EQ(machine.metrics().CounterValue(batched), 5u);
}

}  // namespace
}  // namespace flexos
