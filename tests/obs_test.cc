// Observability layer tests (PR 3): histogram bucket math, trace ring
// semantics, exporter schemas, the log bridge, and end-to-end metric
// recording through a built image.
#include <cctype>
#include <cstring>
#include <map>
#include <memory>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "core/image_builder.h"
#include "obs/export.h"
#include "obs/metrics.h"
#include "obs/names.h"
#include "obs/trace.h"
#include "support/log.h"

namespace flexos {
namespace {

using obs::LatencyHistogram;

// ---------------------------------------------------------------------------
// Minimal recursive-descent JSON parser, just enough to validate exporter
// output structurally (objects, arrays, strings, numbers, bools, null).

struct JsonValue {
  enum Kind { kNull, kBool, kNumber, kString, kArray, kObject } kind = kNull;
  bool boolean = false;
  double number = 0;
  std::string str;
  std::vector<JsonValue> items;
  std::map<std::string, JsonValue> fields;

  const JsonValue* Get(const std::string& key) const {
    auto it = fields.find(key);
    return it == fields.end() ? nullptr : &it->second;
  }
};

class JsonParser {
 public:
  explicit JsonParser(std::string_view text) : text_(text) {}

  bool Parse(JsonValue* out) {
    const bool ok = ParseValue(out);
    SkipSpace();
    return ok && pos_ == text_.size();
  }

 private:
  void SkipSpace() {
    while (pos_ < text_.size() &&
           std::isspace(static_cast<unsigned char>(text_[pos_]))) {
      ++pos_;
    }
  }
  bool Consume(char c) {
    SkipSpace();
    if (pos_ < text_.size() && text_[pos_] == c) {
      ++pos_;
      return true;
    }
    return false;
  }
  bool ParseString(std::string* out) {
    SkipSpace();
    if (pos_ >= text_.size() || text_[pos_] != '"') {
      return false;
    }
    ++pos_;
    out->clear();
    while (pos_ < text_.size() && text_[pos_] != '"') {
      char c = text_[pos_++];
      if (c == '\\') {
        if (pos_ >= text_.size()) {
          return false;
        }
        const char esc = text_[pos_++];
        switch (esc) {
          case '"': c = '"'; break;
          case '\\': c = '\\'; break;
          case '/': c = '/'; break;
          case 'n': c = '\n'; break;
          case 'r': c = '\r'; break;
          case 't': c = '\t'; break;
          case 'b': c = '\b'; break;
          case 'f': c = '\f'; break;
          case 'u': {
            if (pos_ + 4 > text_.size()) {
              return false;
            }
            pos_ += 4;  // Validated as hex by strtol below? Keep simple.
            c = '?';
            break;
          }
          default:
            return false;
        }
      }
      out->push_back(c);
    }
    if (pos_ >= text_.size()) {
      return false;
    }
    ++pos_;  // Closing quote.
    return true;
  }
  bool ParseValue(JsonValue* out) {
    SkipSpace();
    if (pos_ >= text_.size()) {
      return false;
    }
    const char c = text_[pos_];
    if (c == '{') {
      ++pos_;
      out->kind = JsonValue::kObject;
      SkipSpace();
      if (Consume('}')) {
        return true;
      }
      while (true) {
        std::string key;
        if (!ParseString(&key) || !Consume(':')) {
          return false;
        }
        JsonValue value;
        if (!ParseValue(&value)) {
          return false;
        }
        out->fields.emplace(std::move(key), std::move(value));
        if (Consume('}')) {
          return true;
        }
        if (!Consume(',')) {
          return false;
        }
      }
    }
    if (c == '[') {
      ++pos_;
      out->kind = JsonValue::kArray;
      SkipSpace();
      if (Consume(']')) {
        return true;
      }
      while (true) {
        JsonValue value;
        if (!ParseValue(&value)) {
          return false;
        }
        out->items.push_back(std::move(value));
        if (Consume(']')) {
          return true;
        }
        if (!Consume(',')) {
          return false;
        }
      }
    }
    if (c == '"') {
      out->kind = JsonValue::kString;
      return ParseString(&out->str);
    }
    if (text_.compare(pos_, 4, "true") == 0) {
      out->kind = JsonValue::kBool;
      out->boolean = true;
      pos_ += 4;
      return true;
    }
    if (text_.compare(pos_, 5, "false") == 0) {
      out->kind = JsonValue::kBool;
      pos_ += 5;
      return true;
    }
    if (text_.compare(pos_, 4, "null") == 0) {
      pos_ += 4;
      return true;
    }
    // Number.
    size_t end = pos_;
    while (end < text_.size() &&
           (std::isdigit(static_cast<unsigned char>(text_[end])) ||
            text_[end] == '-' || text_[end] == '+' || text_[end] == '.' ||
            text_[end] == 'e' || text_[end] == 'E')) {
      ++end;
    }
    if (end == pos_) {
      return false;
    }
    out->kind = JsonValue::kNumber;
    out->number = std::stod(std::string(text_.substr(pos_, end - pos_)));
    pos_ = end;
    return true;
  }

  std::string_view text_;
  size_t pos_ = 0;
};

// ---------------------------------------------------------------------------
// Histogram bucket math.

TEST(LatencyHistogramTest, ExactBucketsForSmallValues) {
  for (uint64_t v = 0; v < LatencyHistogram::kLinearBuckets; ++v) {
    EXPECT_EQ(LatencyHistogram::BucketIndex(v), static_cast<int>(v));
    EXPECT_EQ(LatencyHistogram::BucketLowerBound(static_cast<int>(v)), v);
  }
}

TEST(LatencyHistogramTest, BucketEdges) {
  // Every bucket's lower bound must map back to that bucket, and the value
  // one below it to the previous bucket.
  for (int i = 1; i < LatencyHistogram::kOverflowBucket; ++i) {
    const uint64_t lo = LatencyHistogram::BucketLowerBound(i);
    EXPECT_EQ(LatencyHistogram::BucketIndex(lo), i) << "lo=" << lo;
    EXPECT_EQ(LatencyHistogram::BucketIndex(lo - 1), i - 1) << "lo=" << lo;
  }
}

TEST(LatencyHistogramTest, SubBucketWidths) {
  // In [2^e, 2^(e+1)) there are exactly 4 sub-buckets of width 2^(e-2).
  EXPECT_EQ(LatencyHistogram::BucketIndex(8), 8);
  EXPECT_EQ(LatencyHistogram::BucketIndex(9), 8);   // [8, 10)
  EXPECT_EQ(LatencyHistogram::BucketIndex(10), 9);  // [10, 12)
  EXPECT_EQ(LatencyHistogram::BucketIndex(12), 10);
  EXPECT_EQ(LatencyHistogram::BucketIndex(14), 11);
  EXPECT_EQ(LatencyHistogram::BucketIndex(15), 11);
  EXPECT_EQ(LatencyHistogram::BucketIndex(16), 12);
}

TEST(LatencyHistogramTest, OverflowBucket) {
  const uint64_t first_overflow = uint64_t{1}
                                  << (LatencyHistogram::kMaxExp + 1);
  EXPECT_EQ(LatencyHistogram::BucketIndex(first_overflow),
            LatencyHistogram::kOverflowBucket);
  EXPECT_EQ(LatencyHistogram::BucketIndex(first_overflow - 1),
            LatencyHistogram::kOverflowBucket - 1);
  EXPECT_EQ(LatencyHistogram::BucketIndex(UINT64_MAX),
            LatencyHistogram::kOverflowBucket);

  LatencyHistogram hist;
  hist.Record(first_overflow + 123);
  EXPECT_EQ(hist.overflow(), 1u);
  EXPECT_EQ(hist.max(), first_overflow + 123);
  // Overflow ranks report the exact max, not a bucket bound.
  EXPECT_EQ(hist.Percentile(100), first_overflow + 123);
}

TEST(LatencyHistogramTest, PercentilesOnUniformData) {
  LatencyHistogram hist;
  for (uint64_t v = 1; v <= 100; ++v) {
    hist.Record(v);
  }
  EXPECT_EQ(hist.count(), 100u);
  EXPECT_EQ(hist.sum(), 5050u);
  EXPECT_EQ(hist.min(), 1u);
  EXPECT_EQ(hist.max(), 100u);
  // Rank 50 is value 50, in bucket [48, 56) -> reports 48.
  EXPECT_EQ(hist.Percentile(50), 48u);
  // Rank 99 is value 99, in bucket [96, 112) -> reports 96.
  EXPECT_EQ(hist.Percentile(99), 96u);
  // Reported percentiles never exceed the observed max.
  EXPECT_LE(hist.Percentile(100), 100u);
}

TEST(LatencyHistogramTest, PercentileClampsToMinAndEmptyIsZero) {
  LatencyHistogram hist;
  EXPECT_EQ(hist.Percentile(50), 0u);
  hist.Record(9);  // Bucket [8, 10): lower bound 8 < min 9.
  EXPECT_EQ(hist.Percentile(50), 9u);
}

TEST(LatencyHistogramTest, ResetClearsEverything) {
  LatencyHistogram hist;
  hist.Record(5);
  hist.Record(uint64_t{1} << 42);
  hist.Reset();
  EXPECT_EQ(hist.count(), 0u);
  EXPECT_EQ(hist.sum(), 0u);
  EXPECT_EQ(hist.min(), 0u);
  EXPECT_EQ(hist.max(), 0u);
  EXPECT_EQ(hist.overflow(), 0u);
  EXPECT_EQ(hist.Percentile(99), 0u);
}

// ---------------------------------------------------------------------------
// Registry.

TEST(MetricsRegistryTest, FindOrCreateReturnsStableReferences) {
  obs::MetricsRegistry registry;
  obs::Counter& a = registry.GetCounter("x.count");
  a.Add(3);
  // Force rebalancing with more registrations; the reference must survive.
  for (int i = 0; i < 100; ++i) {
    registry.GetCounter("c" + std::to_string(i));
  }
  EXPECT_EQ(&registry.GetCounter("x.count"), &a);
  EXPECT_EQ(registry.CounterValue("x.count"), 3u);
  EXPECT_EQ(registry.CounterValue("never.registered"), 0u);
  EXPECT_EQ(registry.FindHistogram("x.count"), nullptr);
}

TEST(MetricsRegistryTest, EntriesSortedByName) {
  obs::MetricsRegistry registry;
  registry.GetHistogram("b.hist");
  registry.GetCounter("a.count");
  registry.GetGauge("c.gauge");
  const auto entries = registry.Entries();
  ASSERT_EQ(entries.size(), 3u);
  EXPECT_EQ(entries[0].name, "a.count");
  EXPECT_EQ(entries[1].name, "b.hist");
  EXPECT_EQ(entries[2].name, "c.gauge");
  EXPECT_NE(entries[0].counter, nullptr);
  EXPECT_NE(entries[1].histogram, nullptr);
  EXPECT_NE(entries[2].gauge, nullptr);
}

TEST(MetricNamesTest, GateMetricNameRoundTrips) {
  const std::string name = obs::GateMetricName("crossings", "mpk-shared",
                                               /*from_comp=*/-1,
                                               /*to_comp=*/2);
  EXPECT_EQ(name, "gate.crossings.mpk-shared.platform.c2");
  obs::GateMetricParts parts;
  ASSERT_TRUE(obs::ParseGateMetricName(name, &parts));
  EXPECT_EQ(parts.family, "crossings");
  EXPECT_EQ(parts.backend, "mpk-shared");
  EXPECT_EQ(parts.from, "platform");
  EXPECT_EQ(parts.to, "c2");
}

TEST(MetricNamesTest, ParseRejectsNonGateNames) {
  obs::GateMetricParts parts;
  EXPECT_FALSE(obs::ParseGateMetricName("sched.context_switches", &parts));
  EXPECT_FALSE(obs::ParseGateMetricName("gate.crossings.mpk", &parts));
  EXPECT_FALSE(obs::ParseGateMetricName("gate.a.b.c.d.e", &parts));
  EXPECT_FALSE(obs::ParseGateMetricName("gate..mpk.c0.c1", &parts));
}

// ---------------------------------------------------------------------------
// Trace ring.

TEST(TraceBufferTest, WraparoundKeepsNewestAndCountsDropped) {
  obs::TraceBuffer ring(4);
  for (uint64_t i = 0; i < 6; ++i) {
    obs::TraceEvent event;
    event.ts_ns = i;
    ring.Push(event);
  }
  EXPECT_EQ(ring.pushed(), 6u);
  EXPECT_EQ(ring.dropped(), 2u);
  std::vector<obs::TraceEvent> out;
  ring.AppendTo(&out);
  ASSERT_EQ(out.size(), 4u);
  for (size_t i = 0; i < out.size(); ++i) {
    EXPECT_EQ(out[i].ts_ns, i + 2);  // Oldest two overwritten.
  }
}

TEST(TraceBufferTest, NoDropsBelowCapacity) {
  obs::TraceBuffer ring(8);
  for (uint64_t i = 0; i < 8; ++i) {
    ring.Push(obs::TraceEvent{});
  }
  EXPECT_EQ(ring.dropped(), 0u);
}

TEST(TracerTest, DisabledRecordsNothing) {
  obs::Tracer tracer(16);
  EXPECT_FALSE(tracer.enabled());
  tracer.RecordInstant(obs::TraceCat::kNet, "x", 0);
  tracer.RecordComplete(obs::TraceCat::kGate, "y", 0, 1, 0);
  EXPECT_TRUE(tracer.Snapshot().empty());
}

TEST(TraceEventTest, SetTextTruncatesSafely) {
  obs::TraceEvent event;
  event.SetText(std::string(200, 'x'));
  EXPECT_EQ(std::strlen(event.text), sizeof(event.text) - 1);
  event.SetText("short");
  EXPECT_STREQ(event.text, "short");
}

// Live-Tracer behavior; compiled out when this tree stubs the tracer
// (tests/obs_disabled_test.cc covers the stub contract instead).
#ifndef FLEXOS_OBS_DISABLED

TEST(TracerTest, SnapshotSortedByTimestamp) {
  obs::Tracer tracer(16);
  tracer.SetEnabled(true);
  tracer.RecordComplete(obs::TraceCat::kGate, "b", /*ts_ns=*/30, 1, 0);
  tracer.RecordComplete(obs::TraceCat::kGate, "a", /*ts_ns=*/10, 1, 0);
  tracer.RecordInstant(obs::TraceCat::kNet, "c", 0);  // NowNs() == 0.
  const auto events = tracer.Snapshot();
  ASSERT_EQ(events.size(), 3u);
  EXPECT_STREQ(events[0].name, "c");
  EXPECT_STREQ(events[1].name, "a");
  EXPECT_STREQ(events[2].name, "b");
}

TEST(TracerTest, RingWrapCountsDroppedEvents) {
  obs::Tracer tracer(/*capacity_per_thread=*/4);
  tracer.SetEnabled(true);
  for (int i = 0; i < 10; ++i) {
    tracer.RecordInstant(obs::TraceCat::kAlloc, "e", 0);
  }
  EXPECT_EQ(tracer.Snapshot().size(), 4u);
  EXPECT_EQ(tracer.DroppedEvents(), 6u);
  EXPECT_EQ(tracer.buffer_count(), 1u);
}

TEST(TracerTest, MessageCarriesTruncatedText) {
  obs::Tracer tracer(4);
  tracer.SetEnabled(true);
  const std::string longmsg(200, 'x');
  tracer.RecordMessage(obs::TraceCat::kLog, "log.warn", longmsg, 0);
  const auto events = tracer.Snapshot();
  ASSERT_EQ(events.size(), 1u);
  EXPECT_EQ(std::strlen(events[0].text), sizeof(events[0].text) - 1);
}

#endif  // FLEXOS_OBS_DISABLED

// ---------------------------------------------------------------------------
// Exporters.

TEST(ExportTest, JsonEscape) {
  EXPECT_EQ(obs::JsonEscape("plain"), "plain");
  EXPECT_EQ(obs::JsonEscape("a\"b\\c"), "a\\\"b\\\\c");
  EXPECT_EQ(obs::JsonEscape("x\ny"), "x\\ny");
  EXPECT_EQ(obs::JsonEscape(std::string_view("\x01", 1)), "\\u0001");
}

TEST(ExportTest, MetricsJsonParsesAndCarriesValues) {
  obs::MetricsRegistry registry;
  registry.GetCounter("net.frames").Add(7);
  registry.GetGauge("alloc.live").Set(-5);
  obs::LatencyHistogram& hist = registry.GetHistogram("gate.lat");
  for (uint64_t v = 1; v <= 100; ++v) {
    hist.Record(v);
  }
  JsonValue root;
  ASSERT_TRUE(JsonParser(obs::MetricsToJson(registry)).Parse(&root));
  ASSERT_EQ(root.kind, JsonValue::kObject);

  const JsonValue* counters = root.Get("counters");
  ASSERT_NE(counters, nullptr);
  ASSERT_NE(counters->Get("net.frames"), nullptr);
  EXPECT_EQ(counters->Get("net.frames")->number, 7);

  const JsonValue* gauges = root.Get("gauges");
  ASSERT_NE(gauges, nullptr);
  EXPECT_EQ(gauges->Get("alloc.live")->number, -5);

  const JsonValue* histograms = root.Get("histograms");
  ASSERT_NE(histograms, nullptr);
  const JsonValue* lat = histograms->Get("gate.lat");
  ASSERT_NE(lat, nullptr);
  EXPECT_EQ(lat->Get("count")->number, 100);
  EXPECT_EQ(lat->Get("p50")->number, 48);
  EXPECT_EQ(lat->Get("p99")->number, 96);
  EXPECT_EQ(lat->Get("max")->number, 100);
}

// Validates the Chrome trace-event contract Perfetto relies on: object
// wrapper with a traceEvents array; every event has name/cat/ph/pid/tid/ts;
// "X" events carry dur, "i" events carry scope "s".
void ValidateChromeTrace(const std::string& json, size_t expect_events) {
  JsonValue root;
  ASSERT_TRUE(JsonParser(json).Parse(&root)) << json;
  ASSERT_EQ(root.kind, JsonValue::kObject);
  const JsonValue* events = root.Get("traceEvents");
  ASSERT_NE(events, nullptr);
  ASSERT_EQ(events->kind, JsonValue::kArray);
  EXPECT_EQ(events->items.size(), expect_events);
  for (const JsonValue& event : events->items) {
    ASSERT_EQ(event.kind, JsonValue::kObject);
    ASSERT_NE(event.Get("name"), nullptr);
    ASSERT_NE(event.Get("cat"), nullptr);
    ASSERT_NE(event.Get("pid"), nullptr);
    ASSERT_NE(event.Get("tid"), nullptr);
    ASSERT_NE(event.Get("ts"), nullptr);
    const JsonValue* ph = event.Get("ph");
    ASSERT_NE(ph, nullptr);
    if (ph->str == "X") {
      EXPECT_NE(event.Get("dur"), nullptr);
    } else if (ph->str == "i") {
      ASSERT_NE(event.Get("s"), nullptr);
      EXPECT_EQ(event.Get("s")->str, "t");
    } else {
      FAIL() << "unexpected phase " << ph->str;
    }
  }
}

TEST(ExportTest, ChromeTraceSchema) {
  // Built from plain TraceEvent data so the exporter contract is checked
  // in both the enabled and FLEXOS_OBS_DISABLED builds.
  std::vector<obs::TraceEvent> events;
  obs::TraceEvent span;
  span.ts_ns = 1500;
  span.dur_ns = 250;
  span.a0 = 64;
  span.a1 = 16;
  span.name = "mpk-shared-stack";
  span.tid = 2;
  span.cat = obs::TraceCat::kGate;
  span.phase = obs::TracePhase::kComplete;
  events.push_back(span);
  obs::TraceEvent instant;
  instant.ts_ns = 2000;
  instant.a0 = 4096;
  instant.name = "alloc.alloc";
  instant.tid = 1;
  instant.cat = obs::TraceCat::kAlloc;
  instant.phase = obs::TracePhase::kInstant;
  events.push_back(instant);
  obs::TraceEvent message;
  message.ts_ns = 2500;
  message.name = "log.warn";
  message.cat = obs::TraceCat::kLog;
  message.phase = obs::TracePhase::kInstant;
  message.SetText("msg \"quoted\"");
  events.push_back(message);

  const std::string json = obs::TraceToChromeJson(events);
  ValidateChromeTrace(json, 3);
  // Timestamps are microseconds: 1500 ns -> 1.5 us.
  EXPECT_NE(json.find("\"ts\":1.500"), std::string::npos) << json;
  EXPECT_NE(json.find("\"dur\":0.250"), std::string::npos) << json;
  // The inline text payload survives as an escaped "msg" arg.
  EXPECT_NE(json.find("\\\"quoted\\\""), std::string::npos) << json;
}

TEST(ExportTest, EmptyTraceIsValid) {
  ValidateChromeTrace(obs::TraceToChromeJson({}), 0);
}

// ---------------------------------------------------------------------------
// Log bridge.

struct CapturedLog {
  std::vector<std::string> messages;
  std::vector<LogLevel> levels;
};

TEST(LogBridgeTest, SinkReceivesRecordsAndTracerMirrorsWarnings) {
  // The Machine installs itself as the active tracer.
  Machine machine;
  machine.tracer().SetEnabled(true);

  CapturedLog captured;
  SetLogSink(
      [](const LogRecord& record, void* ctx) {
        auto* out = static_cast<CapturedLog*>(ctx);
        out->messages.emplace_back(record.message);
        out->levels.push_back(record.level);
      },
      &captured);
  const LogLevel saved = GetLogLevel();
  SetLogLevel(LogLevel::kInfo);

  FLEXOS_INFO("hello %d", 42);
  FLEXOS_WARN("watch out %s", "now");

  SetLogLevel(saved);
  SetLogSink(nullptr, nullptr);

  ASSERT_EQ(captured.messages.size(), 2u);
  EXPECT_EQ(captured.messages[0], "hello 42");
  EXPECT_EQ(captured.levels[0], LogLevel::kInfo);
  EXPECT_EQ(captured.messages[1], "watch out now");

#ifndef FLEXOS_OBS_DISABLED
  // Only the warn+ line is mirrored into the trace.
  const auto events = machine.tracer().Snapshot();
  ASSERT_EQ(events.size(), 1u);
  EXPECT_STREQ(events[0].name, "log.warn");
  EXPECT_STREQ(events[0].text, "watch out now");
  EXPECT_EQ(events[0].cat, obs::TraceCat::kLog);
#endif
}

TEST(LogBridgeTest, LogLevelKnobIsReadBack) {
  const LogLevel saved = GetLogLevel();
  SetLogLevel(LogLevel::kError);
  EXPECT_EQ(GetLogLevel(), LogLevel::kError);
  SetLogLevel(saved);
}

// ---------------------------------------------------------------------------
// End-to-end: a built image records per-boundary metrics and gate spans.

TEST(ObsIntegrationTest, ImageCallPopulatesBoundaryMetrics) {
  Machine machine;
  ImageBuilder builder(machine);
  ImageConfig config;
  config.backend = IsolationBackend::kMpkSharedStack;
  config.compartments = {{"net"}, {"app", "sched", "libc", "alloc"}};
  auto image = builder.Build(config).value();

  const RouteHandle route = image->Resolve(kLibNet, kLibApp);
  int calls = 0;
  for (int i = 0; i < 10; ++i) {
    image->Call(route, [&] { ++calls; });
  }
  EXPECT_EQ(calls, 10);

  const std::string crossings = obs::GateMetricName(
      "crossings", "mpk-shared", route.from_comp, route.to_comp);
  EXPECT_EQ(machine.metrics().CounterValue(crossings), 10u);

  const std::string latency = obs::GateMetricName(
      "latency_ns", "mpk-shared", route.from_comp, route.to_comp);
  const obs::LatencyHistogram* hist =
      machine.metrics().FindHistogram(latency);
  ASSERT_NE(hist, nullptr);
  EXPECT_EQ(hist->count(), 10u);
  EXPECT_GT(hist->Percentile(50), 0u);

  // The legacy stats() view reads the same numbers.
  const auto it = image->stats().crossings.find(
      std::make_pair(route.from_comp, route.to_comp));
  ASSERT_NE(it, image->stats().crossings.end());
  EXPECT_EQ(it->second.crossings, 10u);
}

#ifndef FLEXOS_OBS_DISABLED
TEST(ObsIntegrationTest, GateSpansTracedWhenEnabled) {
  Machine machine;
  machine.tracer().SetEnabled(true);
  ImageBuilder builder(machine);
  ImageConfig config;
  config.backend = IsolationBackend::kMpkSharedStack;
  config.compartments = {{"net"}, {"app", "sched", "libc", "alloc"}};
  auto image = builder.Build(config).value();

  const RouteHandle route = image->Resolve(kLibNet, kLibApp);
  image->Call(route, [] {});

  bool saw_gate_span = false;
  for (const obs::TraceEvent& event : machine.tracer().Snapshot()) {
    if (event.cat == obs::TraceCat::kGate &&
        event.phase == obs::TracePhase::kComplete) {
      saw_gate_span = true;
      EXPECT_EQ(event.tid, route.to_comp + 1);
    }
  }
  EXPECT_TRUE(saw_gate_span);
}
#endif  // FLEXOS_OBS_DISABLED

TEST(ObsIntegrationTest, BatchedCallsRecordBatchedCounter) {
  Machine machine;
  ImageBuilder builder(machine);
  ImageConfig config;
  config.backend = IsolationBackend::kMpkSharedStack;
  config.compartments = {{"net"}, {"app", "sched", "libc", "alloc"}};
  auto image = builder.Build(config).value();

  const RouteHandle route = image->Resolve(kLibNet, kLibApp);
  {
    GateBatch batch(*image, route);
    for (int i = 0; i < 5; ++i) {
      batch.Run([] {});
    }
  }
  const std::string batched = obs::GateMetricName(
      "batched", "mpk-shared", route.from_comp, route.to_comp);
  EXPECT_EQ(machine.metrics().CounterValue(batched), 5u);
}

}  // namespace
}  // namespace flexos
