// The gate dispatch fast path: FunctionRef, route resolution, cost parity
// between string-keyed and route-keyed dispatch, batched crossings (one
// modeled entry/exit pair for N bodies), per-boundary traffic counters, and
// CallR's exception safety.
#include <gtest/gtest.h>

#include <cstring>
#include <stdexcept>

#include "apps/testbed.h"
#include "core/image_builder.h"
#include "core/mpk_gate.h"
#include "core/vm_gate.h"
#include "support/function_ref.h"

namespace flexos {
namespace {

ImageConfig TwoCompartments(IsolationBackend backend) {
  ImageConfig config;
  config.backend = backend;
  config.compartments = {{"net"}, {"app", "sched", "libc", "alloc"}};
  return config;
}

constexpr IsolationBackend kAllBackends[] = {
    IsolationBackend::kNone, IsolationBackend::kMpkSharedStack,
    IsolationBackend::kMpkSwitchedStack, IsolationBackend::kVmRpc};

int Add(int a, int b) { return a + b; }

TEST(FunctionRefTest, InvokesLambdasAndFunctions) {
  int hits = 0;
  const auto bump_body = [&] { ++hits; };
  FunctionRef<void()> bump(bump_body);
  bump();
  bump();
  EXPECT_EQ(hits, 2);

  int (*add_ptr)(int, int) = Add;
  FunctionRef<int(int, int)> add(add_ptr);
  EXPECT_EQ(add(2, 3), 5);

  const auto mul = [](int a, int b) { return a * b; };
  FunctionRef<int(int, int)> ref(mul);
  EXPECT_EQ(ref(4, 5), 20);
}

TEST(GateRouterTest, ResolveClassifiesRoutes) {
  Machine machine;
  ImageBuilder builder(machine);
  auto image =
      builder.Build(TwoCompartments(IsolationBackend::kMpkSharedStack))
          .value();

  const RouteHandle cross = image->Resolve(kLibNet, kLibApp);
  EXPECT_TRUE(cross.cross);
  EXPECT_FALSE(cross.vm_local);
  EXPECT_NE(cross.from_comp, cross.to_comp);
  EXPECT_NE(cross.gate, nullptr);
  EXPECT_NE(cross.target_exec, nullptr);
  EXPECT_EQ(cross.from, kLibNet);
  EXPECT_EQ(cross.to, kLibApp);

  const RouteHandle same = image->Resolve(kLibApp, kLibSched);
  EXPECT_FALSE(same.cross);
  EXPECT_EQ(same.from_comp, same.to_comp);

  const RouteHandle to_platform = image->Resolve(kLibApp, kLibPlatform);
  EXPECT_TRUE(to_platform.to_platform);
  EXPECT_TRUE(to_platform.cross);  // Platform is pseudo-compartment -1.
}

TEST(GateRouterTest, ResolveHonorsVmReplication) {
  Machine machine;
  ImageBuilder builder(machine);
  // Default ImageConfig replicates sched/alloc/libc into every VM.
  auto image = builder.Build(TwoCompartments(IsolationBackend::kVmRpc))
                   .value();

  const RouteHandle libc = image->Resolve(kLibNet, kLibLibc);
  EXPECT_TRUE(libc.vm_local);

  const RouteHandle app = image->Resolve(kLibNet, kLibApp);
  EXPECT_FALSE(app.vm_local);
  EXPECT_TRUE(app.cross);
}

TEST(GateRouterTest, ResolvePanicsOnUnknownLibrary) {
  Machine machine;
  ImageBuilder builder(machine);
  auto image =
      builder.Build(TwoCompartments(IsolationBackend::kMpkSharedStack))
          .value();
  EXPECT_DEATH(image->Resolve(kLibNet, "nosuchlib"), "not part of this");
  EXPECT_DEATH(image->Resolve("nosuchlib", kLibApp), "not part of this");
}

// The route-keyed fast path must charge exactly what the string-keyed path
// charges — the optimization removes name lookups, not modeled work.
TEST(GateRouterTest, RouteCallCostMatchesStringCall) {
  for (IsolationBackend backend : kAllBackends) {
    for (bool harden_app : {false, true}) {
      ImageConfig config = TwoCompartments(backend);
      if (harden_app) {
        config.hardened_libs = {"app"};
      }
      Machine string_machine;
      auto string_image =
          ImageBuilder(string_machine).Build(config).value();
      Machine route_machine;
      auto route_image = ImageBuilder(route_machine).Build(config).value();

      for (int i = 0; i < 3; ++i) {
        string_image->Call(kLibNet, kLibApp, [] {});
        string_image->Call(kLibApp, kLibSched, [] {});
        string_image->CallLeaf(kLibNet, kLibLibc, [] {});
      }
      const RouteHandle to_app = route_image->Resolve(kLibNet, kLibApp);
      const RouteHandle to_sched = route_image->Resolve(kLibApp, kLibSched);
      const RouteHandle to_libc = route_image->Resolve(kLibNet, kLibLibc);
      for (int i = 0; i < 3; ++i) {
        route_image->Call(to_app, [] {});
        route_image->Call(to_sched, [] {});
        route_image->CallLeaf(to_libc, [] {});
      }

      EXPECT_EQ(string_machine.clock().cycles(),
                route_machine.clock().cycles())
          << "backend " << static_cast<int>(backend) << " hardened "
          << harden_app;
      EXPECT_EQ(string_machine.stats().wrpkru_count,
                route_machine.stats().wrpkru_count);
      EXPECT_EQ(string_machine.stats().vmexit_count,
                route_machine.stats().vmexit_count);
      EXPECT_EQ(string_machine.stats().gate_crossings,
                route_machine.stats().gate_crossings);
      EXPECT_EQ(string_image->stats().cross_compartment_calls,
                route_image->stats().cross_compartment_calls);
      EXPECT_EQ(string_image->stats().same_compartment_calls,
                route_image->stats().same_compartment_calls);
      EXPECT_EQ(string_image->stats().leaf_calls,
                route_image->stats().leaf_calls);
    }
  }
}

// A batch of N bodies charges exactly one gate entry/exit pair plus N
// per-item marshalling charges — verified against the cost model.
TEST(GateRouterTest, BatchChargesOneCrossingPair) {
  for (IsolationBackend backend : kAllBackends) {
    Machine machine;
    auto image = ImageBuilder(machine).Build(TwoCompartments(backend)).value();
    const RouteHandle route = image->Resolve(kLibNet, kLibApp);
    ASSERT_TRUE(route.cross);

    // One full crossing for reference (entry + exit, 64B/16B marshalling).
    const uint64_t before_single = machine.clock().cycles();
    image->Call(route, [] {});
    const uint64_t single_cost = machine.clock().cycles() - before_single;

    // Independently price one batch item straight from the cost model: a
    // direct call, plus payload copies for gates that marshal per item.
    Machine probe(machine.clock().freq_hz(), machine.costs());
    probe.clock().Charge(probe.costs().direct_call);
    if (backend == IsolationBackend::kMpkSwitchedStack ||
        backend == IsolationBackend::kVmRpc) {
      probe.ChargeMemOp(kGateArgBytes);
      probe.ChargeMemOp(kGateRetBytes);
    }
    const uint64_t item_cost = probe.clock().cycles();

    constexpr int kItems = 5;
    const uint64_t crossings_before = machine.stats().gate_crossings;
    const uint64_t wrpkru_before = machine.stats().wrpkru_count;
    const uint64_t vmexit_before = machine.stats().vmexit_count;
    const uint64_t batch_start = machine.clock().cycles();
    int ran = 0;
    {
      GateBatch batch(*image, route);
      for (int i = 0; i < kItems; ++i) {
        batch.Run([&ran] { ++ran; });
      }
      EXPECT_EQ(batch.items(), static_cast<uint64_t>(kItems));
    }
    const uint64_t batch_cost = machine.clock().cycles() - batch_start;
    EXPECT_EQ(ran, kItems);

    // Exactly one modeled entry/exit pair for the whole batch.
    EXPECT_EQ(machine.stats().gate_crossings, crossings_before + 1);
    switch (backend) {
      case IsolationBackend::kMpkSharedStack:
      case IsolationBackend::kMpkSwitchedStack:
        EXPECT_EQ(machine.stats().wrpkru_count, wrpkru_before + 2);
        break;
      case IsolationBackend::kVmRpc:
        EXPECT_EQ(machine.stats().vmexit_count, vmexit_before + 2);
        break;
      case IsolationBackend::kNone:
        EXPECT_EQ(machine.stats().wrpkru_count, wrpkru_before);
        EXPECT_EQ(machine.stats().vmexit_count, vmexit_before);
        break;
    }

    // batch(N) decomposes as (entry + exit, with no payload) + N items.
    // The crossing pair is the single-call cost minus its own marshalling
    // charges minus its body-call charge... measured directly instead: an
    // empty batch charges nothing, so price the pair via a 1-item batch.
    Machine machine2(machine.clock().freq_hz(), machine.costs());
    auto image2 =
        ImageBuilder(machine2).Build(TwoCompartments(backend)).value();
    const RouteHandle route2 = image2->Resolve(kLibNet, kLibApp);
    const uint64_t one_start = machine2.clock().cycles();
    {
      GateBatch batch(*image2, route2);
      batch.Run([] {});
    }
    const uint64_t one_item_batch = machine2.clock().cycles() - one_start;
    const uint64_t pair_cost = one_item_batch - item_cost;
    EXPECT_EQ(batch_cost, pair_cost + kItems * item_cost)
        << "backend " << static_cast<int>(backend);

    // Amortization: for crossings with real gates, batching N calls beats
    // N full crossings.
    if (backend != IsolationBackend::kNone) {
      EXPECT_LT(batch_cost, kItems * single_cost);
    }
  }
}

TEST(GateRouterTest, EmptyBatchChargesNothing) {
  Machine machine;
  auto image =
      ImageBuilder(machine)
          .Build(TwoCompartments(IsolationBackend::kMpkSwitchedStack))
          .value();
  const RouteHandle route = image->Resolve(kLibNet, kLibApp);
  const uint64_t before = machine.clock().cycles();
  const uint64_t crossings_before = machine.stats().gate_crossings;
  { GateBatch batch(*image, route); }
  EXPECT_EQ(machine.clock().cycles(), before);
  EXPECT_EQ(machine.stats().gate_crossings, crossings_before);
}

TEST(GateRouterTest, BatchRunsBodiesInTargetContext) {
  Machine machine;
  auto image =
      ImageBuilder(machine)
          .Build(TwoCompartments(IsolationBackend::kMpkSharedStack))
          .value();
  const RouteHandle route = image->Resolve(kLibNet, kLibApp);
  const int caller_comp = machine.context().compartment;
  int body_comp = -100;
  int between_comp = -100;
  {
    GateBatch batch(*image, route);
    batch.Run([&] { body_comp = machine.context().compartment; });
    between_comp = machine.context().compartment;
    batch.Run([&] { body_comp = machine.context().compartment; });
  }
  EXPECT_EQ(body_comp, route.target_exec->compartment);
  EXPECT_EQ(between_comp, caller_comp);  // Caller context between items.
  EXPECT_EQ(machine.context().compartment, caller_comp);  // Restored.
}

TEST(GateRouterTest, BoundaryCountersTrackCrossingsBatchesAndBytes) {
  Machine machine;
  auto image =
      ImageBuilder(machine)
          .Build(TwoCompartments(IsolationBackend::kMpkSharedStack))
          .value();
  const RouteHandle route = image->Resolve(kLibNet, kLibApp);

  constexpr int kCalls = 3;
  constexpr int kItems = 4;
  for (int i = 0; i < kCalls; ++i) {
    image->Call(route, [] {});
  }
  {
    GateBatch batch(*image, route);
    for (int i = 0; i < kItems; ++i) {
      batch.Run([] {});
    }
  }

  const auto& crossings = image->stats().crossings;
  const auto it =
      crossings.find({route.from_comp, route.to_comp});
  ASSERT_NE(it, crossings.end());
  const BoundaryStats& boundary = it->second;
  EXPECT_EQ(boundary.crossings, static_cast<uint64_t>(kCalls + 1));
  EXPECT_EQ(boundary.batched, static_cast<uint64_t>(kItems));
  EXPECT_EQ(boundary.bytes,
            (kCalls + kItems) * (kGateArgBytes + kGateRetBytes));

  const std::string described = image->DescribeCrossings();
  EXPECT_NE(described.find("crossings=4"), std::string::npos);
  EXPECT_NE(described.find("batched=4"), std::string::npos);
}

TEST(GateRouterTest, BatchOnNonImageRouterDegradesToCalls) {
  // Routers that never override the batch hooks route every item through
  // their ordinary Call path — batching is an optimization, not a
  // correctness requirement on the router.
  class CountingRouter final : public GateRouter {
   public:
    using GateRouter::Call;
    int calls = 0;
    void Call(std::string_view from, std::string_view to,
              FunctionRef<void()> body) override {
      EXPECT_EQ(from, kLibNet);
      EXPECT_EQ(to, kLibLibc);
      ++calls;
      body();
    }
  };
  CountingRouter router;
  const RouteHandle route = router.Resolve(kLibNet, kLibLibc);
  int ran = 0;
  {
    GateBatch batch(router, route);
    batch.Run([&ran] { ++ran; });
    batch.Run([&ran] { ++ran; });
  }
  EXPECT_EQ(ran, 2);
  EXPECT_EQ(router.calls, 2);

  // Plain route-keyed calls take the same fallback.
  router.Call(route, [] {});
  EXPECT_EQ(router.calls, 3);
}

TEST(GateRouterTest, CallRReturnsValueThroughGates) {
  Machine machine;
  auto image =
      ImageBuilder(machine)
          .Build(TwoCompartments(IsolationBackend::kMpkSwitchedStack))
          .value();
  const int via_strings =
      image->CallR<int>(kLibNet, kLibApp, [] { return 41; });
  EXPECT_EQ(via_strings, 41);
  const RouteHandle route = image->Resolve(kLibNet, kLibApp);
  const int via_route = image->CallR<int>(route, [] { return 42; });
  EXPECT_EQ(via_route, 42);
}

TEST(GateRouterTest, CallRPropagatesExceptionsWithoutUb) {
  DirectGateRouter router;
  EXPECT_THROW(
      router.CallR<int>(kLibNet, kLibApp,
                        []() -> int { throw std::runtime_error("boom"); }),
      std::runtime_error);
}

// A remote server that echoes everything back; the guest closes first.
class EchoRemote final : public RemoteApp {
 public:
  size_t ProduceData(uint8_t* out, size_t max) override {
    const size_t n = std::min(max, pending_.size());
    std::memcpy(out, pending_.data(), n);
    pending_.erase(0, n);
    return n;
  }
  bool Finished() const override { return false; }
  void OnReceive(const uint8_t* data, size_t len) override {
    pending_.append(reinterpret_cast<const char*>(data), len);
  }

 private:
  std::string pending_;
};

struct TransferOutcome {
  std::string echoed;
  uint64_t cycles = 0;
  uint64_t batched = 0;
};

TransferOutcome RunEchoTransfer(bool batch_crossings) {
  TestbedConfig config;
  config.image = TwoCompartments(IsolationBackend::kMpkSwitchedStack);
  config.tcp.batch_crossings = batch_crossings;
  Testbed bed(config);

  EchoRemote server_app;
  RemoteTcpConfig peer_config;
  peer_config.local_port = 7777;
  RemoteTcpPeer server(bed.machine(), bed.link(), peer_config, server_app);
  server.Listen();
  bed.AddPeer(&server);

  TransferOutcome outcome;
  bed.SpawnApp("client", [&] {
    Image& image = bed.image();
    NetStack& stack = bed.stack();
    AddressSpace& space = image.SpaceOf(kLibApp);
    const Gaddr buffer = bed.AllocShared(4096);
    const RouteHandle app_to_net = image.Resolve(kLibApp, kLibNet);

    int conn = -1;
    image.Call(app_to_net, [&] {
      conn = stack.TcpConnect(MakeIpv4(10, 0, 0, 2), 7777).value();
    });
    // Large enough that the echo comes back in multi-frame bursts, which
    // arrive faster than the app drains them — the multi-wakeup polls the
    // signal batching coalesces.
    const uint64_t kMessageBytes = 65536;
    const std::string chunk_out(4096, 'x');
    space.WriteUnchecked(buffer, chunk_out.data(), chunk_out.size());
    for (uint64_t sent = 0; sent < kMessageBytes; sent += chunk_out.size()) {
      image.Call(app_to_net, [&] {
        (void)stack.tcp().Send(conn, buffer, chunk_out.size());
      });
    }
    while (outcome.echoed.size() < kMessageBytes) {
      uint64_t n = 0;
      image.Call(app_to_net,
                 [&] { n = stack.tcp().Recv(conn, buffer, 4096).value(); });
      std::string chunk(n, '\0');
      space.ReadUnchecked(buffer, chunk.data(), n);
      outcome.echoed += chunk;
    }
    image.Call(app_to_net, [&] { (void)stack.tcp().Close(conn); });
  });

  EXPECT_TRUE(bed.Run().ok());
  outcome.cycles = bed.machine().clock().cycles();
  for (const auto& [pair, boundary] : bed.image().stats().crossings) {
    outcome.batched += boundary.batched;
  }
  return outcome;
}

TEST(GateRouterTest, BatchedNetstackTransferMatchesUnbatched) {
  const TransferOutcome plain = RunEchoTransfer(false);
  const TransferOutcome batched = RunEchoTransfer(true);
  // Same application-level result, cheaper in modeled time, and the
  // per-frame signal batching actually fired.
  EXPECT_EQ(plain.echoed, batched.echoed);
  EXPECT_EQ(plain.echoed.size(), 65536u);
  EXPECT_EQ(plain.batched, 0u);
  EXPECT_GT(batched.batched, 0u);
  EXPECT_LT(batched.cycles, plain.cycles);
}

TEST(GateRouterDeathTest, CallRPanicsWhenBodyNeverRan) {
  // A router that drops the call on the floor must not let CallR return
  // moved-from garbage.
  class SwallowingRouter final : public GateRouter {
   public:
    using GateRouter::Call;
    void Call(std::string_view, std::string_view,
              FunctionRef<void()>) override {}
  };
  SwallowingRouter router;
  EXPECT_DEATH(router.CallR<int>(kLibNet, kLibApp, [] { return 1; }),
               "CallR body did not run");
}

}  // namespace
}  // namespace flexos
