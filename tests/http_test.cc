// HTTP/1.0 server over the full stack: request parsing units plus
// end-to-end serving from a RamFs through real TCP connections, including
// under MPK isolation with the fs micro-library in its own compartment.
#include <gtest/gtest.h>

#include <cstring>
#include <map>

#include "apps/http_server.h"

namespace flexos {
namespace {

// --- Parser units ------------------------------------------------------------

TEST(HttpParse, SimpleGet) {
  HttpRequest request;
  const int64_t n =
      ParseHttpRequest("GET /index.html HTTP/1.0\r\n\r\n", &request);
  EXPECT_EQ(n, 28);
  EXPECT_EQ(request.method, "GET");
  EXPECT_EQ(request.path, "/index.html");
  EXPECT_TRUE(request.keep_alive);
}

TEST(HttpParse, ConnectionCloseHeader) {
  HttpRequest request;
  const int64_t n = ParseHttpRequest(
      "GET / HTTP/1.0\r\nConnection: close\r\n\r\n", &request);
  EXPECT_GT(n, 0);
  EXPECT_FALSE(request.keep_alive);
}

TEST(HttpParse, IncompleteReturnsZero) {
  HttpRequest request;
  EXPECT_EQ(ParseHttpRequest("GET / HT", &request), 0);
  EXPECT_EQ(ParseHttpRequest("GET / HTTP/1.0\r\n", &request), 0);
}

TEST(HttpParse, MalformedRejected) {
  HttpRequest request;
  EXPECT_LT(ParseHttpRequest("NOT A REQUEST\r\n\r\n", &request), 0);
  EXPECT_LT(ParseHttpRequest("GET /\r\n\r\n", &request), 0);
  EXPECT_LT(
      ParseHttpRequest(std::string(20000, 'x'), &request), 0);
}

TEST(HttpParse, PipelinedRequestsConsumeExactly) {
  const std::string two =
      "GET /a HTTP/1.0\r\n\r\nGET /b HTTP/1.0\r\n\r\n";
  HttpRequest first;
  const int64_t n = ParseHttpRequest(two, &first);
  ASSERT_GT(n, 0);
  EXPECT_EQ(first.path, "/a");
  HttpRequest second;
  ASSERT_GT(ParseHttpRequest(two.substr(static_cast<size_t>(n)), &second),
            0);
  EXPECT_EQ(second.path, "/b");
}

TEST(HttpBuild, ResponseCarriesContentLength) {
  const std::string response = BuildHttpResponse(200, "OK", "body!");
  EXPECT_NE(response.find("HTTP/1.0 200 OK\r\n"), std::string::npos);
  EXPECT_NE(response.find("Content-Length: 5\r\n"), std::string::npos);
  EXPECT_TRUE(response.ends_with("body!"));
}

// --- End to end ----------------------------------------------------------------

// A remote client that sends raw HTTP and collects everything.
class RawHttpClient final : public RemoteApp {
 public:
  explicit RawHttpClient(std::string wire) : wire_(std::move(wire)) {}
  size_t ProduceData(uint8_t* out, size_t max) override {
    const size_t n = std::min(max, wire_.size() - sent_);
    std::memcpy(out, wire_.data() + sent_, n);
    sent_ += n;
    return n;
  }
  bool Finished() const override {
    // Half-close after sending all requests; responses still flow back.
    return sent_ == wire_.size();
  }
  void OnReceive(const uint8_t* data, size_t len) override {
    received_.append(reinterpret_cast<const char*>(data), len);
  }
  const std::string& received() const { return received_; }

 private:
  std::string wire_;
  size_t sent_ = 0;
  std::string received_;
};

struct HttpRun {
  std::string response_bytes;
  HttpServerResult server;
  Status status;
};

HttpRun ServeOnce(const TestbedConfig& config, const std::string& wire,
                  const std::map<std::string, std::string>& documents) {
  Testbed bed(config);
  RamFs fs(bed.machine(), bed.image().SpaceOf(kLibFs),
           bed.image().AllocatorOf(kLibFs), &bed.image());
  for (const auto& [path, content] : documents) {
    FLEXOS_CHECK(fs.WriteFileFromHost(path, content).ok(), "doc load");
  }
  HttpRun run;
  HttpServerOptions options;
  SpawnHttpServer(bed, fs, options, &run.server);

  RawHttpClient client(wire);
  RemoteTcpConfig peer_config;
  peer_config.server_port = options.port;
  RemoteTcpPeer peer(bed.machine(), bed.link(), peer_config, client);
  bed.AddPeer(&peer);
  peer.Connect();
  run.status = bed.Run();
  run.response_bytes = client.received();
  return run;
}

TestbedConfig Baseline() {
  TestbedConfig config;
  config.image = BaselineConfig(DefaultLibs());
  return config;
}

TEST(HttpEndToEnd, ServesExistingFile) {
  const HttpRun run = ServeOnce(Baseline(), "GET /hello.txt HTTP/1.0\r\n\r\n",
                                {{"hello.txt", "Hello, FlexOS!"}});
  EXPECT_TRUE(run.status.ok()) << run.status.ToString();
  EXPECT_NE(run.response_bytes.find("200 OK"), std::string::npos);
  EXPECT_NE(run.response_bytes.find("Content-Length: 14"),
            std::string::npos);
  EXPECT_TRUE(run.response_bytes.ends_with("Hello, FlexOS!"));
  EXPECT_EQ(run.server.responses_200, 1u);
}

TEST(HttpEndToEnd, MissingFileGets404) {
  const HttpRun run =
      ServeOnce(Baseline(), "GET /ghost HTTP/1.0\r\n\r\n", {});
  EXPECT_TRUE(run.status.ok()) << run.status.ToString();
  EXPECT_NE(run.response_bytes.find("404 Not Found"), std::string::npos);
  EXPECT_EQ(run.server.responses_404, 1u);
}

TEST(HttpEndToEnd, NonGetGets405AndGarbageGets400) {
  const HttpRun run = ServeOnce(
      Baseline(),
      "DELETE /x HTTP/1.0\r\n\r\nTOTAL GARBAGE\r\n\r\n", {});
  EXPECT_TRUE(run.status.ok()) << run.status.ToString();
  EXPECT_NE(run.response_bytes.find("405"), std::string::npos);
  EXPECT_NE(run.response_bytes.find("400"), std::string::npos);
  EXPECT_EQ(run.server.responses_400, 2u);
}

TEST(HttpEndToEnd, KeepAliveServesManyRequests) {
  std::string wire;
  for (int i = 0; i < 5; ++i) {
    wire += "GET /doc HTTP/1.0\r\n\r\n";
  }
  const HttpRun run = ServeOnce(Baseline(), wire, {{"doc", "abc"}});
  EXPECT_TRUE(run.status.ok()) << run.status.ToString();
  EXPECT_EQ(run.server.requests, 5u);
  EXPECT_EQ(run.server.responses_200, 5u);
}

TEST(HttpEndToEnd, LargeFileStreamsAcrossManySegments) {
  std::string big(300 * 1024, '\0');
  for (size_t i = 0; i < big.size(); ++i) {
    big[i] = static_cast<char>('A' + i % 26);
  }
  const HttpRun run = ServeOnce(
      Baseline(), "GET /big HTTP/1.0\r\nConnection: close\r\n\r\n",
      {{"big", big}});
  EXPECT_TRUE(run.status.ok()) << run.status.ToString();
  const size_t body_at = run.response_bytes.find("\r\n\r\n");
  ASSERT_NE(body_at, std::string::npos);
  EXPECT_EQ(run.response_bytes.substr(body_at + 4), big);
}

TEST(HttpEndToEnd, WorksWithIsolatedFsCompartment) {
  // {fs} | {net} | {rest}: every file access crosses a gate, every packet
  // crosses another — the server still serves correct bytes.
  TestbedConfig config;
  config.image.backend = IsolationBackend::kMpkSwitchedStack;
  config.image.compartments = {
      {std::string(kLibFs)},
      {std::string(kLibNet)},
      {std::string(kLibApp), std::string(kLibSched), std::string(kLibLibc),
       std::string(kLibAlloc)}};
  const HttpRun run = ServeOnce(config, "GET /f HTTP/1.0\r\n\r\n",
                                {{"f", "compartmentalized bytes"}});
  EXPECT_TRUE(run.status.ok()) << run.status.ToString();
  EXPECT_TRUE(run.response_bytes.ends_with("compartmentalized bytes"));
}

}  // namespace
}  // namespace flexos
