// Compiles the tracer's FLEXOS_OBS_DISABLED stub (defined for this TU only
// in tests/CMakeLists.txt) and checks every call site degrades to a no-op.
// Deliberately includes only the obs header: the stub must be usable
// without the rest of the tree, and linking this TU against the enabled
// library exercises the obs_enabled/obs_disabled inline-namespace split
// (no ODR clash, stub wins locally).
#ifndef FLEXOS_OBS_DISABLED
#error "build misconfigured: this TU must compile with FLEXOS_OBS_DISABLED"
#endif

#include <gtest/gtest.h>

#include "obs/trace.h"

namespace flexos {
namespace {

uint64_t FakeTime(void*) { return 42; }

TEST(ObsDisabledTest, TracerIsInertStub) {
  obs::Tracer tracer;
  tracer.SetEnabled(true);  // Must not actually enable anything.
  EXPECT_FALSE(tracer.enabled());

  tracer.SetTimeSource(&FakeTime, nullptr);
  EXPECT_EQ(tracer.NowNs(), 0u);

  tracer.RecordComplete(obs::TraceCat::kGate, "gate", 0, 10, 1, 2, 3);
  tracer.RecordInstant(obs::TraceCat::kAlloc, "alloc", 1);
  tracer.RecordMessage(obs::TraceCat::kLog, "log.warn", "message", 0);

  EXPECT_TRUE(tracer.Snapshot().empty());
  EXPECT_EQ(tracer.DroppedEvents(), 0u);
  EXPECT_EQ(tracer.buffer_count(), 0u);
}

TEST(ObsDisabledTest, ActiveTracerIsAlwaysNull) {
  obs::Tracer tracer;
  obs::Tracer::SetActive(&tracer);
  EXPECT_EQ(obs::Tracer::Active(), nullptr);
}

TEST(ObsDisabledTest, LogBridgeIsInert) {
  obs::TraceLogMessage("WARN", "nothing should happen");
}

TEST(ObsDisabledTest, TraceBufferStillWorksStandalone) {
  // The ring itself is not stubbed (it is plain data); only the Tracer is.
  obs::TraceBuffer ring(2);
  ring.Push(obs::TraceEvent{});
  EXPECT_EQ(ring.pushed(), 1u);
}

}  // namespace
}  // namespace flexos
