// Compiles the tracer's FLEXOS_OBS_DISABLED stub (defined for this TU only
// in tests/CMakeLists.txt) and checks every call site degrades to a no-op.
// Deliberately includes only the obs header: the stub must be usable
// without the rest of the tree, and linking this TU against the enabled
// library exercises the obs_enabled/obs_disabled inline-namespace split
// (no ODR clash, stub wins locally).
#ifndef FLEXOS_OBS_DISABLED
#error "build misconfigured: this TU must compile with FLEXOS_OBS_DISABLED"
#endif

#include <gtest/gtest.h>

#include "obs/attrib.h"
#include "obs/timeseries.h"
#include "obs/trace.h"

namespace flexos {
namespace {

uint64_t FakeTime(void*) { return 42; }

TEST(ObsDisabledTest, TracerIsInertStub) {
  obs::Tracer tracer;
  tracer.SetEnabled(true);  // Must not actually enable anything.
  EXPECT_FALSE(tracer.enabled());

  tracer.SetTimeSource(&FakeTime, nullptr);
  EXPECT_EQ(tracer.NowNs(), 0u);

  tracer.RecordComplete(obs::TraceCat::kGate, "gate", 0, 10, 1, 2, 3);
  tracer.RecordInstant(obs::TraceCat::kAlloc, "alloc", 1);
  tracer.RecordMessage(obs::TraceCat::kLog, "log.warn", "message", 0);

  EXPECT_TRUE(tracer.Snapshot().empty());
  EXPECT_EQ(tracer.DroppedEvents(), 0u);
  EXPECT_EQ(tracer.buffer_count(), 0u);
}

TEST(ObsDisabledTest, ActiveTracerIsAlwaysNull) {
  obs::Tracer tracer;
  obs::Tracer::SetActive(&tracer);
  EXPECT_EQ(obs::Tracer::Active(), nullptr);
}

TEST(ObsDisabledTest, LogBridgeIsInert) {
  obs::TraceLogMessage("WARN", "nothing should happen");
}

TEST(ObsDisabledTest, TraceBufferStillWorksStandalone) {
  // The ring itself is not stubbed (it is plain data); only the Tracer is.
  obs::TraceBuffer ring(2);
  ring.Push(obs::TraceEvent{});
  EXPECT_EQ(ring.pushed(), 1u);
}

TEST(ObsDisabledTest, AttributorIsInertStub) {
  obs::Attributor attrib;
  attrib.SetEnabled(true, 100);  // Must not actually enable anything.
  EXPECT_FALSE(attrib.enabled());

  // Every instrumentation hook must compile and do nothing.
  attrib.ActivateThread(1, "worker", 0);
  attrib.PushFrame("app", 1, 10);
  attrib.PushGateFrame("mpk-shared", 20);
  attrib.PopFrame(30);
  attrib.PopFrame(40);
  attrib.OnGateCrossing("mpk-shared", 0, 1, 55);
  attrib.Sync(100);
  attrib.Reset(100);

  EXPECT_EQ(attrib.attributed_cycles(), 0u);
  EXPECT_TRUE(attrib.Flame().empty());
  EXPECT_TRUE(attrib.CollapsedStacks().empty());
  EXPECT_TRUE(attrib.CompartmentCycles().empty());
  EXPECT_TRUE(attrib.BackendGateCycles().empty());
  EXPECT_TRUE(attrib.Requests().empty());
  EXPECT_EQ(attrib.FindRequest(obs::kUnattributedRequestId), nullptr);
  EXPECT_EQ(attrib.requests_started(), 0u);
}

TEST(ObsDisabledTest, StubRequestsNeverMint) {
  obs::Attributor attrib;
  const obs::TraceContext ctx = attrib.BeginRequest("tcp:5001", 0, 1000);
  EXPECT_EQ(ctx.id, 0u);
  EXPECT_FALSE(static_cast<bool>(ctx));
  EXPECT_EQ(attrib.current_request(), 0u);
  attrib.EndRequest(ctx.id, 50, 2000);  // No-op, must not crash.
  EXPECT_TRUE(attrib.Requests().empty());
}

TEST(ObsDisabledTest, TimeSeriesIsInertStub) {
  obs::MetricsRegistry registry;
  obs::Tracer tracer;
  obs::TimeSeries series;
  series.BindObs(&registry, &tracer);
  series.Enable(1000);  // Must not actually enable anything.
  EXPECT_FALSE(series.enabled());
  EXPECT_EQ(series.window_cycles(), 0u);

  obs::SloSpec spec;
  spec.pattern = "gate.latency_ns.*";
  series.AddWatchdog(spec);
  EXPECT_TRUE(series.watchdogs().empty());
  series.SetViolationHook([](const obs::SloViolation&) { FAIL(); });

  series.MaybeCapture(50000);
  series.FinalizeTail(60000);
  EXPECT_EQ(series.windows_captured(), 0u);
  EXPECT_EQ(series.violations_total(), 0u);
  EXPECT_TRUE(series.Snapshot().empty());
  series.Disable();  // No-op, must not crash.
}

TEST(ObsDisabledTest, SloSpecParsingStillWorks) {
  // SloSpec + parser are shared plain data: configs with slo directives
  // must parse identically in disabled builds (they just never evaluate).
  obs::SloSpec spec;
  std::string error;
  ASSERT_TRUE(
      obs::ParseSloSpec("gate.latency_ns.mpk-* p99 < 4000", &spec, &error))
      << error;
  EXPECT_EQ(spec.pattern, "gate.latency_ns.mpk-*");
  EXPECT_EQ(spec.stat, obs::SloStat::kP99);
  EXPECT_EQ(spec.op, obs::SloOp::kLt);
  EXPECT_DOUBLE_EQ(spec.threshold, 4000.0);
  EXPECT_EQ(spec.EffectiveName(), "gate.latency_ns.mpk-*.p99");
  EXPECT_EQ(obs::SloSpecToString(spec),
            "gate.latency_ns.mpk-* p99 < 4000");
  EXPECT_FALSE(obs::ParseSloSpec("garbage", &spec, &error));
  EXPECT_FALSE(error.empty());
  EXPECT_TRUE(obs::GlobMatch("a*c", "abc"));
}

TEST(ObsDisabledTest, RequestRecordTypesArePlainData) {
  // TraceContext and RequestRecord are shared plain types, usable (e.g. by
  // exporters and tools) even when the attributor itself is stubbed.
  obs::RequestRecord record;
  record.start_ns = 100;
  record.end_ns = 350;
  EXPECT_EQ(record.WallNanos(), 250u);
  record.end_ns = 0;  // Still open: wall clamps to zero.
  EXPECT_EQ(record.WallNanos(), 0u);
}

}  // namespace
}  // namespace flexos
