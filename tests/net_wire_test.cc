#include <gtest/gtest.h>

#include "net/checksum.h"
#include "net/link.h"
#include "net/nic.h"
#include "net/wire.h"

namespace flexos {
namespace {

TEST(Checksum, KnownVector) {
  // Classic RFC 1071 worked example.
  const uint8_t data[] = {0x00, 0x01, 0xf2, 0x03, 0xf4, 0xf5, 0xf6, 0xf7};
  EXPECT_EQ(Checksum(data, sizeof(data)), 0x220d);
}

TEST(Checksum, OddLengthHandled) {
  const uint8_t data[] = {0xab};
  EXPECT_EQ(Checksum(data, 1), static_cast<uint16_t>(~0xab00 & 0xffff));
}

TEST(Checksum, VerifiesToZero) {
  uint8_t data[20] = {0x45, 0x00, 0x00, 0x54, 0x12, 0x34, 0x40, 0x00,
                      0x40, 0x06, 0x00, 0x00, 0x0a, 0x00, 0x00, 0x01,
                      0x0a, 0x00, 0x00, 0x02};
  const uint16_t sum = Checksum(data, sizeof(data));
  data[10] = static_cast<uint8_t>(sum >> 8);
  data[11] = static_cast<uint8_t>(sum);
  EXPECT_EQ(Checksum(data, sizeof(data)), 0);
}

TEST(Wire, EthRoundTrip) {
  EthHeader eth{.dst = {{1, 2, 3, 4, 5, 6}},
                .src = {{7, 8, 9, 10, 11, 12}},
                .ethertype = kEtherTypeIpv4};
  uint8_t buffer[EthHeader::kSize];
  eth.SerializeTo(buffer);
  const EthHeader parsed = EthHeader::Parse(buffer);
  EXPECT_EQ(parsed.dst, eth.dst);
  EXPECT_EQ(parsed.src, eth.src);
  EXPECT_EQ(parsed.ethertype, kEtherTypeIpv4);
}

TEST(Wire, Ipv4RoundTripAndChecksum) {
  Ipv4Header ip;
  ip.total_len = 40;
  ip.id = 99;
  ip.proto = IpProto::kTcp;
  ip.src = MakeIpv4(10, 0, 0, 1);
  ip.dst = MakeIpv4(10, 0, 0, 2);
  uint8_t buffer[64] = {};
  ip.SerializeTo(buffer);
  Result<Ipv4Header> parsed = Ipv4Header::Parse(buffer, 64);
  ASSERT_TRUE(parsed.ok()) << parsed.status().ToString();
  EXPECT_EQ(parsed->src, ip.src);
  EXPECT_EQ(parsed->dst, ip.dst);
  EXPECT_EQ(parsed->total_len, 40);
  // Corrupt a byte: checksum must fail.
  buffer[13] ^= 0xff;
  EXPECT_FALSE(Ipv4Header::Parse(buffer, 64).ok());
}

TEST(Wire, TcpFrameRoundTrip) {
  TcpHeader tcp;
  tcp.src_port = 40000;
  tcp.dst_port = 5001;
  tcp.seq = 0x01020304;
  tcp.ack = 0x0a0b0c0d;
  tcp.flags = kTcpAck | kTcpPsh;
  tcp.window = 0x1234;
  const std::string payload = "hello over tcp";
  const auto frame = BuildTcpFrame(
      MacAddr{{1, 1, 1, 1, 1, 1}}, MacAddr{{2, 2, 2, 2, 2, 2}},
      MakeIpv4(10, 0, 0, 2), MakeIpv4(10, 0, 0, 1), tcp,
      reinterpret_cast<const uint8_t*>(payload.data()), payload.size());
  Result<ParsedFrame> parsed = ParseFrame(frame);
  ASSERT_TRUE(parsed.ok()) << parsed.status().ToString();
  ASSERT_TRUE(parsed->tcp.has_value());
  EXPECT_EQ(parsed->tcp->seq, tcp.seq);
  EXPECT_EQ(parsed->tcp->ack, tcp.ack);
  EXPECT_EQ(parsed->tcp->flags, tcp.flags);
  EXPECT_EQ(parsed->tcp->window, tcp.window);
  EXPECT_EQ(std::string(parsed->payload.begin(), parsed->payload.end()),
            payload);
}

TEST(Wire, CorruptTcpChecksumRejected) {
  TcpHeader tcp;
  tcp.src_port = 1;
  tcp.dst_port = 2;
  const uint8_t payload[] = {1, 2, 3};
  auto frame = BuildTcpFrame(MacAddr{}, MacAddr{}, 1, 2, tcp, payload, 3);
  frame.back() ^= 0x55;  // Flip payload bits.
  EXPECT_FALSE(ParseFrame(frame).ok());
}

TEST(Wire, UdpFrameRoundTrip) {
  const uint8_t payload[] = {9, 8, 7, 6};
  const auto frame =
      BuildUdpFrame(MacAddr{{1, 0, 0, 0, 0, 1}}, MacAddr{{1, 0, 0, 0, 0, 2}},
                    MakeIpv4(192, 168, 0, 1), MakeIpv4(192, 168, 0, 2), 53,
                    5353, payload, sizeof(payload));
  Result<ParsedFrame> parsed = ParseFrame(frame);
  ASSERT_TRUE(parsed.ok());
  ASSERT_TRUE(parsed->udp.has_value());
  EXPECT_EQ(parsed->udp->src_port, 53);
  EXPECT_EQ(parsed->udp->dst_port, 5353);
  EXPECT_EQ(parsed->payload.size(), 4u);
}

TEST(Wire, ShortFrameRejected) {
  std::vector<uint8_t> frame(10);
  EXPECT_FALSE(ParseFrame(frame).ok());
}

TEST(Wire, SeqArithmeticWrapsCorrectly) {
  EXPECT_TRUE(SeqLt(0xfffffff0u, 0x10u));  // Wraparound: close below.
  EXPECT_FALSE(SeqLt(0x10u, 0xfffffff0u));
  EXPECT_TRUE(SeqLe(5u, 5u));
  EXPECT_TRUE(SeqLt(5u, 6u));
}

TEST(Wire, AddressFormatting) {
  EXPECT_EQ(Ipv4ToString(MakeIpv4(10, 0, 0, 1)), "10.0.0.1");
  EXPECT_EQ((MacAddr{{0xde, 0xad, 0xbe, 0xef, 0, 1}}).ToString(),
            "de:ad:be:ef:00:01");
}

// --- Link model -------------------------------------------------------------

class SinkEndpoint final : public LinkEndpoint {
 public:
  void DeliverFrame(std::vector<uint8_t> frame) override {
    frames.push_back(std::move(frame));
  }
  std::vector<std::vector<uint8_t>> frames;
};

TEST(LinkModel, DeliversAfterLatencyAndSerialization) {
  Machine machine;
  LinkConfig config;
  config.bandwidth_bps = 1e9;  // 1 Gb/s.
  config.latency_ns = 1000;
  Link link(machine, config);
  SinkEndpoint sink;
  link.AttachB(&sink);

  link.SendFromA(std::vector<uint8_t>(125, 0));  // 1000 bits = 1 us at 1 Gb/s.
  EXPECT_EQ(link.DeliverDue(), 0u);  // Not due yet.
  ASSERT_TRUE(link.NextArrivalCycles().has_value());
  machine.clock().AdvanceTo(*link.NextArrivalCycles());
  EXPECT_EQ(link.DeliverDue(), 1u);
  EXPECT_EQ(sink.frames.size(), 1u);
  // 1 us serialization + 1 us latency = 2 us >= 4200 cycles at 2.1 GHz.
  EXPECT_GE(machine.clock().NowNanos(), 2000u);
}

TEST(LinkModel, SerializesBackToBackFrames) {
  Machine machine;
  LinkConfig config;
  config.bandwidth_bps = 1e9;
  config.latency_ns = 0;
  Link link(machine, config);
  SinkEndpoint sink;
  link.AttachB(&sink);
  link.SendFromA(std::vector<uint8_t>(125, 0));
  link.SendFromA(std::vector<uint8_t>(125, 0));
  // Second frame can only arrive after both serialization times. (+1 ns
  // absorbs the conservative rounding in the serialization model.)
  machine.clock().AdvanceTo(machine.clock().NanosToCycles(1001));
  link.DeliverDue();
  EXPECT_EQ(sink.frames.size(), 1u);
  machine.clock().AdvanceTo(machine.clock().NanosToCycles(2100));
  link.DeliverDue();
  EXPECT_EQ(sink.frames.size(), 2u);
}

TEST(LinkModel, LossDropsDeterministically) {
  Machine machine;
  LinkConfig config;
  config.loss_probability = 0.5;
  config.seed = 1234;
  Link link(machine, config);
  SinkEndpoint sink;
  link.AttachB(&sink);
  for (int i = 0; i < 100; ++i) {
    link.SendFromA(std::vector<uint8_t>(64, 0));
  }
  machine.clock().AdvanceTo(machine.clock().cycles() + 1'000'000'000);
  link.DeliverDue();
  EXPECT_GT(link.stats().frames_dropped, 20u);
  EXPECT_GT(sink.frames.size(), 20u);
  EXPECT_EQ(sink.frames.size() + link.stats().frames_dropped, 100u);
}

TEST(NicModel, QueuesAndDropsWhenFull) {
  Machine machine;
  Nic nic(machine, "eth-test", MacAddr{{2, 0, 0, 0, 0, 1}},
          MakeIpv4(10, 0, 0, 1));
  for (size_t i = 0; i < Nic::kDefaultRxQueueDepth + 10; ++i) {
    nic.DeliverFrame(std::vector<uint8_t>(64, 0));
  }
  EXPECT_EQ(nic.stats().rx_dropped, 10u);
  EXPECT_EQ(nic.stats().rx_frames, Nic::kDefaultRxQueueDepth);
  size_t popped = 0;
  while (nic.HasRx()) {
    (void)nic.PopRx();
    ++popped;
  }
  EXPECT_EQ(popped, Nic::kDefaultRxQueueDepth);
}

}  // namespace
}  // namespace flexos
