#include <gtest/gtest.h>

#include "core/coloring.h"
#include "support/rng.h"

namespace flexos {
namespace {

using Edges = std::vector<std::pair<int, int>>;

TEST(Coloring, EmptyGraphUsesOneColorPerIndependentSet) {
  const ColoringResult result = ColorGraphDsatur(5, {});
  EXPECT_EQ(result.num_colors, 1);
  EXPECT_TRUE(IsProperColoring(result, {}));
}

TEST(Coloring, TriangleNeedsThree) {
  const Edges triangle = {{0, 1}, {1, 2}, {0, 2}};
  EXPECT_EQ(ColorGraphDsatur(3, triangle).num_colors, 3);
  EXPECT_EQ(ColorGraphExact(3, triangle).num_colors, 3);
}

TEST(Coloring, BipartiteNeedsTwo) {
  // K3,3 — greedy can do 2 here; exact must.
  Edges edges;
  for (int a = 0; a < 3; ++a) {
    for (int b = 3; b < 6; ++b) {
      edges.emplace_back(a, b);
    }
  }
  const ColoringResult exact = ColorGraphExact(6, edges);
  EXPECT_EQ(exact.num_colors, 2);
  EXPECT_TRUE(IsProperColoring(exact, edges));
}

TEST(Coloring, EvenCycleTwoOddCycleThree) {
  Edges even = {{0, 1}, {1, 2}, {2, 3}, {3, 0}};
  EXPECT_EQ(ColorGraphExact(4, even).num_colors, 2);
  Edges odd = {{0, 1}, {1, 2}, {2, 3}, {3, 4}, {4, 0}};
  EXPECT_EQ(ColorGraphExact(5, odd).num_colors, 3);
}

TEST(Coloring, CompleteGraphWorstCase) {
  // Paper §2: "In the worst case where all libraries have conflicts, each
  // library will be instantiated in its own compartment."
  Edges edges;
  const int n = 7;
  for (int a = 0; a < n; ++a) {
    for (int b = a + 1; b < n; ++b) {
      edges.emplace_back(a, b);
    }
  }
  EXPECT_EQ(ColorGraphExact(n, edges).num_colors, n);
}

TEST(Coloring, ExactNeverWorseThanGreedy) {
  Rng rng(31337);
  for (int trial = 0; trial < 30; ++trial) {
    const int n = 4 + static_cast<int>(rng.NextBelow(10));
    Edges edges;
    for (int a = 0; a < n; ++a) {
      for (int b = a + 1; b < n; ++b) {
        if (rng.NextBool(0.35)) {
          edges.emplace_back(a, b);
        }
      }
    }
    const ColoringResult greedy = ColorGraphDsatur(n, edges);
    const ColoringResult exact = ColorGraphExact(n, edges);
    EXPECT_TRUE(IsProperColoring(greedy, edges)) << "trial " << trial;
    EXPECT_TRUE(IsProperColoring(exact, edges)) << "trial " << trial;
    EXPECT_LE(exact.num_colors, greedy.num_colors) << "trial " << trial;
    EXPECT_GE(exact.num_colors, 1);
  }
}

TEST(Coloring, ImproperColoringDetected) {
  ColoringResult bogus;
  bogus.num_colors = 1;
  bogus.color_of = {0, 0};
  EXPECT_FALSE(IsProperColoring(bogus, {{0, 1}}));
  EXPECT_FALSE(IsProperColoring(bogus, {{0, 5}}));  // Out of range.
}

// Known chromatic numbers: the Petersen graph needs 3 colors.
TEST(Coloring, PetersenGraphIsThreeChromatic) {
  const Edges petersen = {{0, 1}, {1, 2}, {2, 3}, {3, 4}, {4, 0},
                          {5, 7}, {7, 9}, {9, 6}, {6, 8}, {8, 5},
                          {0, 5}, {1, 6}, {2, 7}, {3, 8}, {4, 9}};
  const ColoringResult exact = ColorGraphExact(10, petersen);
  EXPECT_EQ(exact.num_colors, 3);
  EXPECT_TRUE(IsProperColoring(exact, petersen));
}

}  // namespace
}  // namespace flexos
