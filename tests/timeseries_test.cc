// flexwatch tests (DESIGN.md §14): window capture semantics, boundary
// coalescing, ring retention, SLO watchdog evaluation, rebind behavior,
// the per-vCPU utilization counters, and exporter determinism.
#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "apps/testbed.h"
#include "core/image_builder.h"
#include "hw/machine.h"
#include "obs/export.h"
#include "obs/names.h"
#include "obs/timeseries.h"
#include "sched/coop_scheduler.h"

namespace flexos {
namespace {

using obs::SloOp;
using obs::SloSpec;
using obs::SloStat;
using obs::WindowSnapshot;

SloSpec MustParse(const std::string& text) {
  SloSpec spec;
  std::string error;
  EXPECT_TRUE(obs::ParseSloSpec(text, &spec, &error)) << error;
  return spec;
}

// Finds a counter sample by name in a window; -1 when absent.
int64_t CounterDelta(const WindowSnapshot& window, const std::string& name) {
  for (const auto& sample : window.counters) {
    if (sample.name == name) {
      return static_cast<int64_t>(sample.delta);
    }
  }
  return -1;
}

// --- Glob + SLO spec parsing (shared plain data) ---------------------------

TEST(Glob, MatchesLiteralAndStar) {
  EXPECT_TRUE(obs::GlobMatch("abc", "abc"));
  EXPECT_FALSE(obs::GlobMatch("abc", "abd"));
  EXPECT_FALSE(obs::GlobMatch("abc", "abcd"));
  EXPECT_TRUE(obs::GlobMatch("*", ""));
  EXPECT_TRUE(obs::GlobMatch("*", "anything"));
  EXPECT_TRUE(obs::GlobMatch("gate.latency_ns.*", "gate.latency_ns.mpk.c0.c1"));
  EXPECT_FALSE(obs::GlobMatch("gate.latency_ns.*x", "gate.latency_ns.abc"));
  EXPECT_TRUE(obs::GlobMatch("*.c0.*", "gate.crossings.none.c0.c1"));
  EXPECT_TRUE(obs::GlobMatch("a*b*c", "a--b--b--c"));
  EXPECT_FALSE(obs::GlobMatch("a*b*c", "a--c--b"));
}

TEST(SloSpec, ParsesEveryStatAndOp) {
  const SloSpec spec = MustParse("gate.latency_ns.mpk-shared.* p99 < 4000");
  EXPECT_EQ(spec.pattern, "gate.latency_ns.mpk-shared.*");
  EXPECT_EQ(spec.stat, SloStat::kP99);
  EXPECT_EQ(spec.op, SloOp::kLt);
  EXPECT_DOUBLE_EQ(spec.threshold, 4000.0);

  EXPECT_EQ(MustParse("m p50 <= 1").stat, SloStat::kP50);
  EXPECT_EQ(MustParse("m p90 <= 1").stat, SloStat::kP90);
  EXPECT_EQ(MustParse("m mean > 1").stat, SloStat::kMean);
  EXPECT_EQ(MustParse("m max >= 1").stat, SloStat::kMax);
  EXPECT_EQ(MustParse("m count < 1").stat, SloStat::kCount);
  EXPECT_EQ(MustParse("m sum < 1").stat, SloStat::kSum);
  EXPECT_EQ(MustParse("m value < 1.5").stat, SloStat::kValue);
  EXPECT_EQ(MustParse("m value <= 1").op, SloOp::kLe);
  EXPECT_EQ(MustParse("m value > 1").op, SloOp::kGt);
  EXPECT_EQ(MustParse("m value >= 1").op, SloOp::kGe);
}

TEST(SloSpec, RejectsMalformedSpecs) {
  SloSpec spec;
  std::string error;
  EXPECT_FALSE(obs::ParseSloSpec("", &spec, &error));
  EXPECT_FALSE(obs::ParseSloSpec("m p99 <", &spec, &error));
  EXPECT_FALSE(obs::ParseSloSpec("m p99 < 1 extra", &spec, &error));
  EXPECT_FALSE(obs::ParseSloSpec("m p75 < 1", &spec, &error));
  EXPECT_FALSE(error.empty());
  error.clear();
  EXPECT_FALSE(obs::ParseSloSpec("m p99 != 1", &spec, &error));
  EXPECT_FALSE(error.empty());
  EXPECT_FALSE(obs::ParseSloSpec("m p99 < abc", &spec, &error));
  EXPECT_FALSE(obs::ParseSloSpec("m p99 < 1xyz", &spec, &error));
  EXPECT_FALSE(obs::ParseSloSpec("m p99 < nan", &spec, &error));
}

TEST(SloSpec, RoundTripsThroughToString) {
  const SloSpec spec = MustParse("gate.latency_ns.* p99 < 4000");
  const SloSpec again = MustParse(obs::SloSpecToString(spec));
  EXPECT_TRUE(spec == again);
}

TEST(SloSpec, EffectiveNameDefaultsToPatternDotStat) {
  SloSpec spec = MustParse("gate.latency_ns.* p99 < 4000");
  EXPECT_EQ(spec.EffectiveName(), "gate.latency_ns.*.p99");
  spec.name = "gate-tail";
  EXPECT_EQ(spec.EffectiveName(), "gate-tail");
}

// --- Window capture --------------------------------------------------------

TEST(TimeSeries, CapturesPerWindowCounterDeltas) {
  Machine machine;
  machine.metrics().GetCounter("test.reqs");
  machine.timeseries().Enable(/*window_cycles=*/1000);
  ASSERT_TRUE(machine.timeseries().enabled());

  machine.metrics().GetCounter("test.reqs").Add(7);
  machine.ChargeCompute(1000);
  machine.PollTimeSeries();
  ASSERT_EQ(machine.timeseries().windows_captured(), 1u);

  machine.metrics().GetCounter("test.reqs").Add(3);
  machine.ChargeCompute(1000);
  machine.PollTimeSeries();
  ASSERT_EQ(machine.timeseries().windows_captured(), 2u);

  const auto windows = machine.timeseries().Snapshot();
  ASSERT_EQ(windows.size(), 2u);
  EXPECT_EQ(windows[0].seq, 1u);
  EXPECT_EQ(windows[0].start_cycles, 0u);
  EXPECT_EQ(windows[0].end_cycles, 1000u);
  EXPECT_EQ(CounterDelta(windows[0], "test.reqs"), 7);
  EXPECT_EQ(windows[1].seq, 2u);
  EXPECT_EQ(windows[1].start_cycles, 1000u);
  EXPECT_EQ(windows[1].end_cycles, 2000u);
  EXPECT_EQ(CounterDelta(windows[1], "test.reqs"), 3);
}

TEST(TimeSeries, PollBeforeBoundaryCapturesNothing) {
  Machine machine;
  machine.timeseries().Enable(1000);
  machine.PollTimeSeries();  // At cycle 0: nothing elapsed.
  machine.ChargeCompute(999);
  machine.PollTimeSeries();
  EXPECT_EQ(machine.timeseries().windows_captured(), 0u);
  machine.ChargeCompute(1);  // Exactly on the boundary closes.
  machine.PollTimeSeries();
  EXPECT_EQ(machine.timeseries().windows_captured(), 1u);
}

TEST(TimeSeries, EnableWithZeroWindowStaysDisabled) {
  Machine machine;
  machine.timeseries().Enable(0);
  EXPECT_FALSE(machine.timeseries().enabled());
  machine.ChargeCompute(100000);
  machine.PollTimeSeries();
  EXPECT_EQ(machine.timeseries().windows_captured(), 0u);
  EXPECT_TRUE(machine.timeseries().Snapshot().empty());
}

TEST(TimeSeries, MultiBoundaryJumpCoalescesIntoOneWindow) {
  // An idle jump across 5 boundaries closes ONE spanning window: deltas
  // are never lost and the ring is not flushed with empty windows.
  Machine machine;
  machine.metrics().GetCounter("test.reqs").Add(4);
  machine.timeseries().Enable(1000);
  machine.metrics().GetCounter("test.reqs").Add(5);
  machine.ChargeCompute(5500);
  machine.PollTimeSeries();
  ASSERT_EQ(machine.timeseries().windows_captured(), 1u);

  const auto windows = machine.timeseries().Snapshot();
  ASSERT_EQ(windows.size(), 1u);
  EXPECT_EQ(windows[0].start_cycles, 0u);
  EXPECT_EQ(windows[0].end_cycles, 5000u);  // Boundary-aligned, not 5500.
  // Pre-Enable accrual is the baseline; only post-Enable deltas count.
  EXPECT_EQ(CounterDelta(windows[0], "test.reqs"), 5);

  // The next boundary continues from the aligned close.
  machine.ChargeCompute(400);  // now = 5900 < 6000.
  machine.PollTimeSeries();
  EXPECT_EQ(machine.timeseries().windows_captured(), 1u);
  machine.ChargeCompute(100);  // now = 6000.
  machine.PollTimeSeries();
  EXPECT_EQ(machine.timeseries().windows_captured(), 2u);
}

TEST(TimeSeries, RingRetainsMostRecentWindows) {
  Machine machine;
  auto& reqs = machine.metrics().GetCounter("test.reqs");
  machine.timeseries().Enable(1000, /*ring_windows=*/4);
  for (int i = 1; i <= 6; ++i) {
    reqs.Add(static_cast<uint64_t>(i));  // Window i's delta = i.
    machine.ChargeCompute(1000);
    machine.PollTimeSeries();
  }
  EXPECT_EQ(machine.timeseries().windows_captured(), 6u);

  const auto windows = machine.timeseries().Snapshot();
  ASSERT_EQ(windows.size(), 4u);  // Ring of 4: windows 3..6 survive.
  for (size_t i = 0; i < windows.size(); ++i) {
    const uint64_t seq = i + 3;
    EXPECT_EQ(windows[i].seq, seq);
    EXPECT_EQ(windows[i].start_cycles, (seq - 1) * 1000);
    EXPECT_EQ(windows[i].end_cycles, seq * 1000);
    EXPECT_EQ(CounterDelta(windows[i], "test.reqs"),
              static_cast<int64_t>(seq));
  }
}

TEST(TimeSeries, IdleWindowsOmitZeroSamples) {
  Machine machine;
  machine.metrics().GetCounter("test.reqs");
  machine.metrics().GetGauge("test.depth");
  machine.metrics().GetHistogram("test.lat");
  machine.timeseries().Enable(1000);
  machine.ChargeCompute(1000);  // Nothing recorded this window.
  machine.PollTimeSeries();
  const auto windows = machine.timeseries().Snapshot();
  ASSERT_EQ(windows.size(), 1u);
  EXPECT_TRUE(windows[0].counters.empty());
  EXPECT_TRUE(windows[0].gauges.empty());
  EXPECT_TRUE(windows[0].histograms.empty());
}

TEST(TimeSeries, FinalizeTailClosesPartialWindow) {
  Machine machine;
  auto& reqs = machine.metrics().GetCounter("test.reqs");
  machine.timeseries().Enable(1000);
  reqs.Add(2);
  machine.ChargeCompute(1000);
  machine.PollTimeSeries();
  reqs.Add(9);
  machine.ChargeCompute(250);  // Partial window: 1000..1250.
  machine.timeseries().FinalizeTail(machine.max_cycles());
  ASSERT_EQ(machine.timeseries().windows_captured(), 2u);

  const auto windows = machine.timeseries().Snapshot();
  ASSERT_EQ(windows.size(), 2u);
  EXPECT_EQ(windows[1].start_cycles, 1000u);
  EXPECT_EQ(windows[1].end_cycles, 1250u);  // End = now, not boundary.
  EXPECT_EQ(CounterDelta(windows[1], "test.reqs"), 9);

  // Nothing elapsed since: a second finalize is a no-op.
  machine.timeseries().FinalizeTail(machine.max_cycles());
  EXPECT_EQ(machine.timeseries().windows_captured(), 2u);
}

TEST(TimeSeries, FinalizeTailWithNoElapsedTimeIsNoop) {
  Machine machine;
  machine.timeseries().Enable(1000);
  machine.timeseries().FinalizeTail(0);
  EXPECT_EQ(machine.timeseries().windows_captured(), 0u);
}

TEST(TimeSeries, RebindPicksUpMetricsRegisteredAfterEnable) {
  Machine machine;
  machine.timeseries().Enable(1000);
  machine.ChargeCompute(1000);
  machine.PollTimeSeries();  // Window 1 under the initial binding.

  // A metric born mid-run: its whole accrual belongs to the window that
  // closes after registration (prev starts at zero).
  machine.metrics().GetCounter("test.late").Add(42);
  machine.ChargeCompute(1000);
  machine.PollTimeSeries();

  const auto windows = machine.timeseries().Snapshot();
  ASSERT_EQ(windows.size(), 2u);
  EXPECT_EQ(CounterDelta(windows[0], "test.late"), -1);  // Not bound yet.
  EXPECT_EQ(CounterDelta(windows[1], "test.late"), 42);
}

TEST(TimeSeries, GaugeSamplesAreInstantaneous) {
  Machine machine;
  auto& depth = machine.metrics().GetGauge("test.depth");
  machine.timeseries().Enable(1000);
  depth.Set(5);
  machine.ChargeCompute(1000);
  machine.PollTimeSeries();
  depth.Set(2);
  machine.ChargeCompute(1000);
  machine.PollTimeSeries();

  const auto windows = machine.timeseries().Snapshot();
  ASSERT_EQ(windows.size(), 2u);
  ASSERT_EQ(windows[0].gauges.size(), 1u);
  EXPECT_EQ(windows[0].gauges[0].value, 5);
  ASSERT_EQ(windows[1].gauges.size(), 1u);
  EXPECT_EQ(windows[1].gauges[0].value, 2);
}

TEST(TimeSeries, HistogramWindowsHoldOnlyThatWindowsSamples) {
  Machine machine;
  auto& lat = machine.metrics().GetHistogram("test.lat");
  machine.timeseries().Enable(1000);
  // Window 1: all fast. Window 2: all slow. Per-window percentiles must
  // diverge even though the cumulative histogram blends both.
  for (int i = 0; i < 100; ++i) {
    lat.Record(10);
  }
  machine.ChargeCompute(1000);
  machine.PollTimeSeries();
  for (int i = 0; i < 100; ++i) {
    lat.Record(100000);
  }
  machine.ChargeCompute(1000);
  machine.PollTimeSeries();

  const auto windows = machine.timeseries().Snapshot();
  ASSERT_EQ(windows.size(), 2u);
  ASSERT_EQ(windows[0].histograms.size(), 1u);
  ASSERT_EQ(windows[1].histograms.size(), 1u);
  const auto& w1 = windows[0].histograms[0].delta;
  const auto& w2 = windows[1].histograms[0].delta;
  EXPECT_EQ(w1.count(), 100u);
  EXPECT_EQ(w2.count(), 100u);
  EXPECT_EQ(w1.Percentile(99), 10u);
  EXPECT_GE(w2.Percentile(50), 65536u);  // Bucket floor of 100000.
  // The cumulative histogram cannot tell the two regimes apart.
  EXPECT_EQ(lat.count(), 200u);
  EXPECT_EQ(lat.Percentile(50), 10u);
}

// --- SLO watchdogs ---------------------------------------------------------

TEST(TimeSeries, CounterValueWatchdogFiresOnViolation) {
  Machine machine;
  auto& reqs = machine.metrics().GetCounter("test.reqs");
  machine.tracer().SetEnabled(true);
  machine.timeseries().Enable(1000);
  // Good condition: at least 5 requests per window.
  machine.timeseries().AddWatchdog(MustParse("test.reqs value >= 5"));

  reqs.Add(10);  // Window 1 satisfies.
  machine.ChargeCompute(1000);
  machine.PollTimeSeries();
  EXPECT_EQ(machine.timeseries().violations_total(), 0u);

  reqs.Add(2);  // Window 2 violates (delta 2 < 5).
  machine.ChargeCompute(1000);
  machine.PollTimeSeries();
  EXPECT_EQ(machine.timeseries().violations_total(), 1u);
  EXPECT_EQ(machine.metrics().CounterValue("slo.violations.test.reqs.value"),
            1u);

  // The violation also left a cat=slo trace instant.
  bool saw_slo_instant = false;
  for (const auto& event : machine.tracer().Snapshot()) {
    if (event.cat == obs::TraceCat::kSlo) {
      saw_slo_instant = true;
    }
  }
  EXPECT_TRUE(saw_slo_instant);
}

TEST(TimeSeries, HistogramWatchdogSkipsEmptyWindows) {
  Machine machine;
  auto& lat = machine.metrics().GetHistogram("test.lat");
  machine.timeseries().Enable(1000);
  machine.timeseries().AddWatchdog(MustParse("test.lat p99 < 100"));

  for (int i = 0; i < 10; ++i) {
    lat.Record(5000);  // p99 way over 100: violation.
  }
  machine.ChargeCompute(1000);
  machine.PollTimeSeries();
  EXPECT_EQ(machine.timeseries().violations_total(), 1u);

  machine.ChargeCompute(1000);  // No samples: no verdict either way.
  machine.PollTimeSeries();
  EXPECT_EQ(machine.timeseries().violations_total(), 1u);
}

TEST(TimeSeries, ViolationHookReceivesMeasurement) {
  Machine machine;
  auto& reqs = machine.metrics().GetCounter("test.reqs");
  machine.timeseries().Enable(1000);
  SloSpec spec = MustParse("test.reqs value < 5");
  spec.name = "req-rate";
  machine.timeseries().AddWatchdog(spec);

  std::vector<obs::SloViolation> seen;
  machine.timeseries().SetViolationHook(
      [&seen](const obs::SloViolation& v) { seen.push_back(v); });

  reqs.Add(9);
  machine.ChargeCompute(1000);
  machine.PollTimeSeries();
  ASSERT_EQ(seen.size(), 1u);
  EXPECT_EQ(seen[0].slo_name, "req-rate");
  EXPECT_EQ(seen[0].metric, "test.reqs");
  EXPECT_EQ(seen[0].window_seq, 1u);
  EXPECT_DOUBLE_EQ(seen[0].measured, 9.0);
  EXPECT_DOUBLE_EQ(seen[0].threshold, 5.0);
  EXPECT_EQ(machine.metrics().CounterValue("slo.violations.req-rate"), 1u);
}

TEST(TimeSeries, GlobWatchdogCoversEveryMatchingMetric) {
  Machine machine;
  machine.metrics().GetCounter("svc.a.errors").Add(0);
  machine.metrics().GetCounter("svc.b.errors");
  machine.timeseries().Enable(1000);
  machine.timeseries().AddWatchdog(MustParse("svc.*.errors value <= 0"));

  machine.metrics().GetCounter("svc.a.errors").Add(1);
  machine.metrics().GetCounter("svc.b.errors").Add(1);
  machine.ChargeCompute(1000);
  machine.PollTimeSeries();
  // Both matching counters violated in the same window.
  EXPECT_EQ(machine.timeseries().violations_total(), 2u);
}

// --- Exporters -------------------------------------------------------------

TEST(Exporters, PrometheusTextFormat) {
  Machine machine;
  machine.metrics().GetCounter("gate.crossings.mpk-shared.c0.c1").Add(3);
  machine.metrics().GetGauge("sched.vcpu0.queue_depth").Set(2);
  machine.metrics().GetHistogram("gate.latency_ns.none.c0.c1").Record(77);
  const std::string text = obs::MetricsToPrometheus(machine.metrics());

  // Names sanitized to the Prometheus charset; counters/gauges typed,
  // histograms exported as summaries with quantiles.
  EXPECT_NE(text.find("# TYPE gate_crossings_mpk_shared_c0_c1 counter"),
            std::string::npos);
  EXPECT_NE(text.find("gate_crossings_mpk_shared_c0_c1 3"),
            std::string::npos);
  EXPECT_NE(text.find("# TYPE sched_vcpu0_queue_depth gauge"),
            std::string::npos);
  EXPECT_NE(text.find("# TYPE gate_latency_ns_none_c0_c1 summary"),
            std::string::npos);
  EXPECT_NE(text.find("quantile=\"0.99\""), std::string::npos);
  EXPECT_NE(text.find("gate_latency_ns_none_c0_c1_count 1"),
            std::string::npos);
}

TEST(Exporters, TimelineJsonSchemaAndDeterminism) {
  std::string timelines[2];
  for (int run = 0; run < 2; ++run) {
    Machine machine;
    auto& reqs = machine.metrics().GetCounter("test.reqs");
    auto& lat = machine.metrics().GetHistogram("test.lat");
    machine.timeseries().Enable(1000);
    for (int w = 0; w < 3; ++w) {
      reqs.Add(static_cast<uint64_t>(w + 1));
      lat.Record(static_cast<uint64_t>(100 * (w + 1)));
      machine.ChargeCompute(1000);
      machine.PollTimeSeries();
    }
    machine.timeseries().FinalizeTail(machine.max_cycles());
    timelines[run] = obs::TimelineToJson(
        machine.timeseries().Snapshot(),
        machine.timeseries().window_cycles());
  }
  EXPECT_EQ(timelines[0], timelines[1]);  // Same seed, same bytes.
  EXPECT_NE(timelines[0].find("\"schema\":\"flexos-timeline-v1\""),
            std::string::npos);
  EXPECT_NE(timelines[0].find("\"window_cycles\":1000"), std::string::npos);
  EXPECT_NE(timelines[0].find("\"test.reqs\""), std::string::npos);
  EXPECT_NE(timelines[0].find("\"p99\""), std::string::npos);
}

// --- Scheduler + testbed integration ---------------------------------------

TEST(TimeSeriesIntegration, SchedulerFeedsPerVcpuUtilization) {
  Machine machine;
  machine.SetVCpuCount(2);
  machine.timeseries().Enable(10000);
  CoopScheduler sched(machine);
  for (int pin = 0; pin < 2; ++pin) {
    ASSERT_TRUE(sched.Spawn("worker" + std::to_string(pin),
                            [&] {
                              for (int i = 0; i < 16; ++i) {
                                machine.ChargeCompute(5000);
                                sched.Yield();
                              }
                            },
                            pin)
                    .ok());
  }
  ASSERT_TRUE(sched.Run().ok());

  // Both pinned lanes accumulated busy cycles under their own name, and
  // the scheduler loop's polling closed windows along the way.
  const uint64_t busy0 = machine.metrics().CounterValue(
      obs::SchedVCpuMetricName(0, obs::kVCpuBusyCycles));
  const uint64_t busy1 = machine.metrics().CounterValue(
      obs::SchedVCpuMetricName(1, obs::kVCpuBusyCycles));
  EXPECT_GE(busy0, 16u * 5000u);
  EXPECT_GE(busy1, 16u * 5000u);
  EXPECT_GT(machine.timeseries().windows_captured(), 0u);
}

TEST(TimeSeriesIntegration, TestbedWiringEnablesWatchAndNotifiesSupervisor) {
  TestbedConfig config;
  config.image.backend = IsolationBackend::kMpkSharedStack;
  config.image.compartments = {
      {std::string(kLibNet)},
      {std::string(kLibApp), std::string(kLibSched), std::string(kLibLibc),
       std::string(kLibAlloc), std::string(kLibFs)}};
  config.watch = true;
  config.window_cycles = 10000;
  config.supervise = true;
  // Impossible SLO: any window with gate traffic violates, which must
  // reach the supervisor as an advisory notice (never a quarantine).
  config.image.slos.push_back(MustParse("gate.crossings.* value < 1"));

  Testbed bed(config);
  ASSERT_TRUE(bed.machine().timeseries().enabled());
  bed.SpawnApp("app", [&bed] {
    for (int i = 0; i < 64; ++i) {
      bed.machine().ChargeCompute(2000);
      bed.scheduler().Yield();
    }
  });
  ASSERT_TRUE(bed.Run().ok());
  bed.machine().timeseries().FinalizeTail(bed.machine().max_cycles());

  EXPECT_GT(bed.machine().timeseries().windows_captured(), 0u);
  EXPECT_GT(bed.machine().timeseries().violations_total(), 0u);
  ASSERT_NE(bed.supervisor(), nullptr);
  EXPECT_GT(bed.supervisor()->slo_notices(), 0u);
  EXPECT_EQ(bed.supervisor()->slo_notices(),
            bed.machine().metrics().CounterValue(obs::kMetricFaultSloNotices));
  // Advisory only: no compartment was quarantined or restarted.
  EXPECT_EQ(bed.machine().metrics().CounterValue(obs::kMetricFaultRestarts),
            0u);
}

TEST(TimeSeriesIntegration, TestbedDefaultsWindowFromImageConfig) {
  TestbedConfig config;
  config.image.backend = IsolationBackend::kNone;
  config.image.compartments = {
      {std::string(kLibNet)},
      {std::string(kLibApp), std::string(kLibSched), std::string(kLibLibc),
       std::string(kLibAlloc), std::string(kLibFs)}};
  config.image.window_cycles = 4096;  // Config implies watch, no flag.
  Testbed bed(config);
  EXPECT_TRUE(bed.machine().timeseries().enabled());
  EXPECT_EQ(bed.machine().timeseries().window_cycles(), 4096u);
}

}  // namespace
}  // namespace flexos
