// flexlint: every rule in the catalog (DESIGN.md §6) with a violating and
// a passing fixture, model extraction from configs and from built images,
// the lint-derived dispatch-validation hook, and report rendering.
#include <gtest/gtest.h>

#include <map>

#include "analysis/flexlint.h"
#include "core/config_parser.h"
#include "core/image_builder.h"
#include "fault/supervisor.h"
#include "hw/trap.h"

namespace flexos {
namespace {

LibraryMeta MustParse(const std::string& name, const std::string& text) {
  Result<LibraryMeta> meta = ParseLibraryMeta(name, text);
  EXPECT_TRUE(meta.ok()) << meta.status().ToString();
  return meta.value();
}

// A resolver backed by an explicit map (unlisted names are unknown).
MetaResolver MapResolver(std::map<std::string, LibraryMeta> metas) {
  return [metas = std::move(metas)](
             std::string_view name) -> std::optional<LibraryMeta> {
    const auto it = metas.find(std::string(name));
    if (it == metas.end()) {
      return std::nullopt;
    }
    return it->second;
  };
}

ImageConfig TwoCompartments(IsolationBackend backend) {
  ImageConfig config;
  config.backend = backend;
  config.compartments = {{"net"}, {"app", "sched", "libc", "alloc"}};
  return config;
}

// --- FL001: undeclared cross-compartment call ----------------------------

TEST(LintRules, FL001FlagsCallsOutsideTheCalleeApi) {
  ImageConfig config;
  config.backend = IsolationBackend::kMpkSharedStack;
  config.compartments = {{"cli"}, {"srv"}};
  const auto resolver = MapResolver({
      {"cli", MustParse("cli",
                        "[Memory access] Read(Own); Write(Own)\n"
                        "[Call] srv::poll")},
      {"srv", MustParse("srv",
                        "[Memory access] Read(Own); Write(Own)\n"
                        "[API] serve(...)")},
  });
  const LintReport report = LintConfig(config, resolver);
  EXPECT_EQ(report.CountForRule(kRuleUndeclaredCrossCall), 1u);
  EXPECT_TRUE(report.HasErrors());

  // Passing fixture: the called function is exposed.
  const auto fixed = MapResolver({
      {"cli", MustParse("cli",
                        "[Memory access] Read(Own); Write(Own)\n"
                        "[Call] srv::serve")},
      {"srv", MustParse("srv",
                        "[Memory access] Read(Own); Write(Own)\n"
                        "[API] serve(...)")},
  });
  EXPECT_EQ(LintConfig(config, fixed).CountForRule(kRuleUndeclaredCrossCall),
            0u);
}

TEST(LintRules, FL001SeesCfiNarrowedGates) {
  // CFI registration narrows net's effective API below its metadata:
  // app's declared net::send / net::recv dispatches would trap.
  ImageConfig config = TwoCompartments(IsolationBackend::kMpkSharedStack);
  config.cfi_libs = {"net"};
  config.apis["net"] = {"listen", "accept", "close"};
  const LintReport report = LintConfig(config);
  EXPECT_EQ(report.CountForRule(kRuleUndeclaredCrossCall), 2u);
  EXPECT_TRUE(report.HasErrors());

  config.apis["net"] = {"listen", "accept", "send", "recv", "close"};
  EXPECT_EQ(LintConfig(config).CountForRule(kRuleUndeclaredCrossCall), 0u);
}

// --- FL002: Requires-violating cohabitation ------------------------------

TEST(LintRules, FL002FlagsForbiddenCohabitation) {
  ImageConfig config;
  config.backend = IsolationBackend::kMpkSharedStack;
  config.compartments = {{"net", "sched"}, {"app", "libc", "alloc"}};
  const LintReport report = LintConfig(config);
  EXPECT_GE(report.CountForRule(kRuleRequiresViolation), 1u);
  EXPECT_TRUE(report.HasErrors());

  // Passing fixture: the paper's iperf split keeps the unsafe stack alone.
  EXPECT_EQ(LintConfig(TwoCompartments(IsolationBackend::kMpkSharedStack))
                .CountForRule(kRuleRequiresViolation),
            0u);
}

// --- FL003: trusted gate on a boundary that demands isolation ------------

TEST(LintRules, FL003FlagsDirectGatesBetweenIncompatibleLibraries) {
  ImageConfig config = TwoCompartments(IsolationBackend::kNone);
  const LintReport report = LintConfig(config);
  EXPECT_GE(report.CountForRule(kRuleTrustedGate), 1u);
  EXPECT_TRUE(report.HasErrors());

  // Passing fixtures: a real backend on the same split, and a direct-gate
  // split whose endpoints are mutually compatible.
  EXPECT_EQ(LintConfig(TwoCompartments(IsolationBackend::kMpkSharedStack))
                .CountForRule(kRuleTrustedGate),
            0u);
  ImageConfig compatible;
  compatible.backend = IsolationBackend::kNone;
  compatible.compartments = {{"sched"}, {"libc", "alloc"}};
  EXPECT_EQ(LintConfig(compatible).CountForRule(kRuleTrustedGate), 0u);
}

// --- FL004: shared writes into a compartment that forbids them -----------

TEST(LintRules, FL004FlagsCrossCompartmentSharedWriteConflicts) {
  ImageConfig config;
  config.backend = IsolationBackend::kMpkSharedStack;
  config.compartments = {{"writer"}, {"holder"}};
  const auto resolver = MapResolver({
      {"writer", MustParse("writer",
                           "[Memory access] Read(Own); Write(Own,Shared)")},
      {"holder", MustParse("holder",
                           "[Memory access] Read(Own); Write(Own)\n"
                           "[Requires] *(Read,Own)")},
  });
  const LintReport report = LintConfig(config, resolver);
  EXPECT_EQ(report.CountForRule(kRuleSharedWriteConflict), 1u);
  // A warning, not an error: the spec may accept it knowingly.
  EXPECT_FALSE(report.HasErrors());

  const auto relaxed = MapResolver({
      {"writer", MustParse("writer",
                           "[Memory access] Read(Own); Write(Own,Shared)")},
      {"holder", MustParse("holder",
                           "[Memory access] Read(Own); Write(Own)\n"
                           "[Requires] *(Read,Own), *(Write,Shared)")},
  });
  EXPECT_EQ(
      LintConfig(config, relaxed).CountForRule(kRuleSharedWriteConflict),
      0u);
}

// --- FL005: over-compartmentalization ------------------------------------

TEST(LintRules, FL005FlagsMoreCompartmentsThanTheMetadataNeeds) {
  ImageConfig config;
  config.backend = IsolationBackend::kVmRpc;
  config.compartments = {{"app"}, {"net"}, {"sched", "libc", "alloc"}};
  const LintReport report = LintConfig(config);
  EXPECT_EQ(report.CountForRule(kRuleOverCompartmentalized), 1u);
  EXPECT_FALSE(report.HasErrors());

  EXPECT_EQ(LintConfig(TwoCompartments(IsolationBackend::kMpkSharedStack))
                .CountForRule(kRuleOverCompartmentalized),
            0u);
}

// --- FL006: gate/API registration drift ----------------------------------

TEST(LintRules, FL006FlagsRegistrationDrift) {
  // An entry point registered for CFI that the metadata never declared.
  ImageConfig config = TwoCompartments(IsolationBackend::kMpkSharedStack);
  config.cfi_libs = {"sched"};
  config.apis["sched"] = {"thread_add", "thread_rm", "yield",
                          "steal_runqueue"};
  const LintReport drifted = LintConfig(config);
  EXPECT_GE(drifted.CountForRule(kRuleApiDrift), 1u);
  EXPECT_TRUE(drifted.HasErrors());

  // CFI with no registration at all: every call into sched traps.
  ImageConfig unregistered = TwoCompartments(IsolationBackend::kMpkSharedStack);
  unregistered.cfi_libs = {"sched"};
  const LintReport missing = LintConfig(unregistered);
  EXPECT_GE(missing.CountForRule(kRuleApiDrift), 1u);
  EXPECT_TRUE(missing.HasErrors());

  // Passing fixture: registration matches the metadata exactly.
  ImageConfig exact = TwoCompartments(IsolationBackend::kMpkSharedStack);
  exact.cfi_libs = {"sched"};
  exact.apis["sched"] = {"thread_add", "thread_rm", "yield"};
  EXPECT_EQ(LintConfig(exact).CountForRule(kRuleApiDrift), 0u);
}

// --- FL007: placed library without metadata ------------------------------

TEST(LintRules, FL007FlagsUnknownLibraries) {
  ImageConfig config;
  config.backend = IsolationBackend::kMpkSharedStack;
  config.compartments = {{"net"}, {"app", "mystery_blob"}};
  const LintReport report = LintConfig(config);
  EXPECT_EQ(report.CountForRule(kRuleUnknownLibrary), 1u);
  EXPECT_TRUE(report.HasErrors());

  EXPECT_EQ(LintConfig(TwoCompartments(IsolationBackend::kMpkSharedStack))
                .CountForRule(kRuleUnknownLibrary),
            0u);
}

// --- FL008: 'Call *' mixed with a concrete list --------------------------

TEST(LintRules, FL008FlagsRedundantCallLists) {
  ImageConfig config;
  config.backend = IsolationBackend::kMpkSharedStack;
  config.compartments = {{"blob"}, {"srv"}};
  const auto resolver = MapResolver({
      {"blob", MustParse("blob",
                         "[Memory access] Read(*); Write(*)\n"
                         "[Call] *, srv::serve")},
      {"srv", MustParse("srv",
                        "[Memory access] Read(Own); Write(Own)\n"
                        "[API] serve(...)")},
  });
  const LintReport report = LintConfig(config, resolver);
  EXPECT_EQ(report.CountForRule(kRuleRedundantCallList), 1u);

  EXPECT_EQ(LintConfig(TwoCompartments(IsolationBackend::kMpkSharedStack))
                .CountForRule(kRuleRedundantCallList),
            0u);
}

// --- FL010: differently-pinned writers with no isolating boundary --------

ImageConfig PinnedPair(IsolationBackend backend, int app_pin, int net_pin) {
  ImageConfig config;
  config.backend = backend;
  config.compartments = {{"app"}, {"net"}};
  config.vcpus = 2;
  config.pins = {{"app", app_pin}, {"net", net_pin}};
  return config;
}

TEST(LintSmpRules, FL010FlagsUnisolatedCrossVcpuSharedWriters) {
  const LintReport report =
      LintConfig(PinnedPair(IsolationBackend::kNone, 0, 1));
  EXPECT_EQ(report.CountForRule(kRuleSharedVcpuRace), 1u);
  EXPECT_TRUE(report.HasErrors());

  // Passing fixtures: same vCPU, a real backend, or a single-vCPU machine.
  EXPECT_EQ(LintConfig(PinnedPair(IsolationBackend::kNone, 0, 0))
                .CountForRule(kRuleSharedVcpuRace),
            0u);
  EXPECT_EQ(LintConfig(PinnedPair(IsolationBackend::kMpkSharedStack, 0, 1))
                .CountForRule(kRuleSharedVcpuRace),
            0u);
  ImageConfig single = PinnedPair(IsolationBackend::kNone, 0, 0);
  single.vcpus = 1;
  single.pins.clear();
  EXPECT_EQ(LintConfig(single).CountForRule(kRuleSharedVcpuRace), 0u);
}

// --- FL011: vm-replicated state reached from differently-pinned vCPUs ----

ImageConfig ShardedVmConfig(int app2_pin) {
  ImageConfig config;
  config.backend = IsolationBackend::kVmRpc;
  config.compartments = {
      {"app1"}, {"app2"}, {"net"}, {"sched", "libc", "alloc"}};
  config.vcpus = 2;
  config.pins = {{"app1", 0}, {"app2", app2_pin}};
  return config;
}

TEST(LintSmpRules, FL011FlagsReplicatedStateSpanningVcpus) {
  const LintReport report = LintConfig(ShardedVmConfig(/*app2_pin=*/1));
  // Both app shards call into the replicated libc and alloc copies.
  EXPECT_EQ(report.CountForRule(kRuleVmStateDivergence), 2u);
  EXPECT_TRUE(report.HasErrors());

  EXPECT_EQ(LintConfig(ShardedVmConfig(/*app2_pin=*/0))
                .CountForRule(kRuleVmStateDivergence),
            0u);
}

// --- FL012: concurrently-entered library without declared reentrancy -----

ImageConfig ShardedMpkConfig() {
  ImageConfig config;
  config.backend = IsolationBackend::kMpkSharedStack;
  config.compartments = {{"app1"}, {"app2"}, {"net"}};
  config.vcpus = 2;
  config.pins = {{"app1", 0}, {"app2", 1}};
  return config;
}

TEST(LintSmpRules, FL012FlagsConcurrentlyCallableNonReentrantLibs) {
  const LintReport report = LintConfig(ShardedMpkConfig());
  EXPECT_EQ(report.CountForRule(kRuleNonReentrant), 1u);
  EXPECT_TRUE(report.HasErrors());
  bool named_net = false;
  for (const LintDiagnostic& d : report.diagnostics) {
    named_net = named_net || (d.rule == kRuleNonReentrant && d.entity == "net");
  }
  EXPECT_TRUE(named_net);

  // The config-level reentrancy declaration silences it.
  ImageConfig declared = ShardedMpkConfig();
  declared.reentrant_libs = {"net"};
  EXPECT_EQ(LintConfig(declared).CountForRule(kRuleNonReentrant), 0u);
}

TEST(LintSmpRules, FL012TreatsUnpinnedCallersAsWildcards) {
  // An unpinned caller can be scheduled on any vCPU, so on a multi-vCPU
  // machine it alone makes the callee concurrently reachable.
  ImageConfig config;
  config.backend = IsolationBackend::kMpkSharedStack;
  config.compartments = {{"app"}, {"net"}};
  config.vcpus = 2;
  EXPECT_GE(LintConfig(config).CountForRule(kRuleNonReentrant), 1u);
  config.vcpus = 1;
  EXPECT_EQ(LintConfig(config).CountForRule(kRuleNonReentrant), 0u);
}

// --- FL013: per-core MPK key demand ---------------------------------------

ImageConfig ManyCompartments(bool split) {
  ImageConfig config;
  config.backend = IsolationBackend::kMpkSharedStack;
  config.vcpus = 2;
  config.compartments = {{"net"}};
  config.pins["net"] = 0;
  config.reentrant_libs = {"net"};
  for (int i = 1; i <= 16; ++i) {
    const std::string lib = "app" + std::to_string(i);
    config.compartments.push_back({lib});
    config.pins[lib] = (split && i > 7) ? 1 : 0;
  }
  return config;
}

TEST(LintSmpRules, FL013FlagsPerCoreKeyOverflow) {
  const LintReport report = LintConfig(ManyCompartments(/*split=*/false));
  EXPECT_EQ(report.CountForRule(kRuleKeyBudget), 1u);
  EXPECT_TRUE(report.HasErrors());

  EXPECT_EQ(LintConfig(ManyCompartments(/*split=*/true))
                .CountForRule(kRuleKeyBudget),
            0u);
}

// --- FL014: device-owning compartment pinned off the boot vCPU -----------

TEST(LintSmpRules, FL014FlagsDeviceLibsPinnedOffVcpuZero) {
  const LintReport report =
      LintConfig(PinnedPair(IsolationBackend::kMpkSharedStack, 0, 1));
  EXPECT_EQ(report.CountForRule(kRuleDeviceAffinity), 1u);
  EXPECT_TRUE(report.HasErrors());

  EXPECT_EQ(LintConfig(PinnedPair(IsolationBackend::kMpkSharedStack, 0, 0))
                .CountForRule(kRuleDeviceAffinity),
            0u);
  // Unpinned device libs follow their interrupts; nothing to flag.
  ImageConfig unpinned = PinnedPair(IsolationBackend::kMpkSharedStack, 0, 0);
  unpinned.pins.erase("net");
  EXPECT_EQ(LintConfig(unpinned).CountForRule(kRuleDeviceAffinity), 0u);
}

// --- Deterministic output: normalization and byte-stable JSON ------------

TEST(LintDeterminism, NormalizeSortsAndDeduplicates) {
  LintReport report;
  LintDiagnostic a{std::string(kRuleNonReentrant), LintSeverity::kError,
                   "net", "msg", "fix"};
  LintDiagnostic b{std::string(kRuleSharedVcpuRace), LintSeverity::kError,
                   "app | net", "msg", "fix"};
  report.diagnostics = {a, b, a, a};  // Duplicates, out of rule order.
  report.Normalize();
  ASSERT_EQ(report.diagnostics.size(), 2u);
  EXPECT_EQ(report.diagnostics[0].rule, kRuleSharedVcpuRace);
  EXPECT_EQ(report.diagnostics[1].rule, kRuleNonReentrant);
}

TEST(LintDeterminism, JsonOutputIsByteStableAcrossRuns) {
  // The golden bytes pin finding order (FL010 before FL014), field order,
  // and escaping; any nondeterminism in rule evaluation order breaks this.
  const ImageConfig config = PinnedPair(IsolationBackend::kNone, 0, 1);
  const std::string first = LintConfig(config).ToJson();
  EXPECT_EQ(first, LintConfig(config).ToJson());
  const size_t fl010 = first.find("\"rule\":\"FL010\"");
  const size_t fl014 = first.find("\"rule\":\"FL014\"");
  ASSERT_NE(fl010, std::string::npos) << first;
  ASSERT_NE(fl014, std::string::npos) << first;
  EXPECT_LT(fl010, fl014);
  EXPECT_EQ(first.find('\n'), std::string::npos);  // One line for tooling.
}

// --- FL000 and metadata-file linting -------------------------------------

TEST(LintMeta, ParseFailureIsAnError) {
  const LintReport report =
      LintMetaText("broken", "[Memory access] Fly(Own)");
  EXPECT_EQ(report.CountForRule(kRuleParse), 1u);
  EXPECT_TRUE(report.HasErrors());
}

TEST(LintMeta, CleanMetadataProducesNoFindings) {
  const LintReport report =
      LintMetaText("sched", SchedulerMeta().ToString());
  EXPECT_TRUE(report.diagnostics.empty()) << report.ToText();
}

TEST(LintMeta, MixedWildcardCallListWarns) {
  const LintReport report = LintMetaText(
      "blob", "[Memory access] Read(*); Write(*)\n[Call] *, libc::memcpy");
  EXPECT_EQ(report.CountForRule(kRuleRedundantCallList), 1u);
  EXPECT_FALSE(report.HasErrors());
}

// --- Extraction: configs and built images agree --------------------------

TEST(LintModelExtraction, ImageAndConfigProduceTheSameFindings) {
  ImageConfig config = TwoCompartments(IsolationBackend::kMpkSharedStack);
  config.cfi_libs = {"net"};
  config.apis["net"] = {"listen", "accept", "close"};  // send/recv missing.

  Machine machine;
  ImageBuilder builder(machine);
  auto image = builder.Build(config).value();
  // Without a fault handler restarts cannot happen and the image-side
  // extraction skips FL009; install a (hook-less) supervisor so both
  // extraction paths see the same restartable boundaries.
  fault::CompartmentSupervisor supervisor(*image);
  image->SetFaultHandler(&supervisor);

  const LintReport from_config = LintConfig(config);
  const LintReport from_image = LintImage(*image);
  ASSERT_EQ(from_config.diagnostics.size(), from_image.diagnostics.size());
  for (size_t i = 0; i < from_config.diagnostics.size(); ++i) {
    EXPECT_EQ(from_config.diagnostics[i].rule,
              from_image.diagnostics[i].rule);
    EXPECT_EQ(from_config.diagnostics[i].entity,
              from_image.diagnostics[i].entity);
  }
  EXPECT_EQ(from_image.CountForRule(kRuleUndeclaredCrossCall), 2u);
}

TEST(LintModelExtraction, RecoversCallGraphAndSharedAccessMap) {
  const LintModel model = ExtractModel(
      TwoCompartments(IsolationBackend::kMpkSharedStack),
      BuiltinMetaResolver());
  // app -> net crosses the boundary; libc -> sched stays inside.
  bool saw_app_to_net = false;
  bool saw_libc_to_sched = false;
  for (const LintCallEdge& edge : model.calls) {
    if (edge.caller == "app" && edge.callee == "net") {
      saw_app_to_net = true;
      EXPECT_TRUE(edge.cross);
    }
    if (edge.caller == "libc" && edge.callee == "sched") {
      saw_libc_to_sched = true;
      EXPECT_FALSE(edge.cross);
    }
  }
  EXPECT_TRUE(saw_app_to_net);
  EXPECT_TRUE(saw_libc_to_sched);
  // net's worst case writes the shared region; nobody placed forbids it.
  EXPECT_EQ(model.shared_writers.count("net"), 1u);
  EXPECT_TRUE(model.shared_write_forbidders.empty());
}

// --- The runtime counterpart: dispatch validation ------------------------

TEST(DispatchValidation, DeclaredDispatchesPassUndeclaredOnesTrap) {
  const ImageConfig config =
      TwoCompartments(IsolationBackend::kMpkSharedStack);
  Machine machine;
  ImageBuilder builder(machine);
  auto image = builder.Build(config).value();

  image->EnableDispatchValidation(
      AllowedCallPairs(ExtractModel(config, BuiltinMetaResolver())));

  // app declares its calls into net; the dispatch is allowed.
  bool ran = false;
  image->Call("app", "net", [&] { ran = true; });
  EXPECT_TRUE(ran);
  // The platform pseudo-library is always trusted.
  image->Call(kLibPlatform, "app", [] {});
  EXPECT_GT(image->validated_dispatches(), 0u);

  // net declares no calls into app: metadata drift, deterministic trap.
  bool trapped = false;
  try {
    image->Call("net", "app", [] {});
  } catch (const TrapException& trap) {
    trapped = true;
    EXPECT_EQ(trap.info().kind, TrapKind::kCfiViolation);
    EXPECT_NE(trap.info().detail.find("net->app"), std::string::npos);
  }
  EXPECT_TRUE(trapped);

  // Disabled again, the same dispatch goes through unchecked.
  image->DisableDispatchValidation();
  image->Call("net", "app", [] {});
}

TEST(DispatchValidation, AllowedPairsComeFromTheMetadata) {
  const auto pairs = AllowedCallPairs(ExtractModel(
      TwoCompartments(IsolationBackend::kMpkSharedStack),
      BuiltinMetaResolver()));
  EXPECT_EQ(pairs.count("app->net"), 1u);
  EXPECT_EQ(pairs.count("net->libc"), 1u);
  EXPECT_EQ(pairs.count("libc->sched"), 1u);
  EXPECT_EQ(pairs.count("net->sched"), 0u);
  EXPECT_EQ(pairs.count("net->app"), 0u);
}

// --- Report rendering and strict-compat parsing --------------------------

TEST(LintReportRendering, TextAndJsonNameTheRule) {
  ImageConfig config;
  config.backend = IsolationBackend::kMpkSharedStack;
  config.compartments = {{"net", "sched"}, {"app", "libc", "alloc"}};
  const LintReport report = LintConfig(config);
  ASSERT_TRUE(report.HasErrors());
  EXPECT_NE(report.ToText().find("FL002"), std::string::npos);
  EXPECT_NE(report.ToJson().find("\"rule\":\"FL002\""), std::string::npos);
  EXPECT_NE(report.ToText().find("fix:"), std::string::npos);
}

TEST(LintReportRendering, BoundaryMetricNamesMatchTheObsConvention) {
  const LintModel model =
      ExtractModel(TwoCompartments(IsolationBackend::kMpkSharedStack),
                   BuiltinMetaResolver());
  const std::string json = BoundaryMetricNamesJson(model);
  // net (c0) and the rest (c1) call each other: both directions appear,
  // each with all four gate.* metric families in obs/names.h spelling.
  EXPECT_NE(json.find("\"from\":\"c0\",\"to\":\"c1\""), std::string::npos)
      << json;
  EXPECT_NE(json.find("\"from\":\"c1\",\"to\":\"c0\""), std::string::npos);
  for (const char* family : {"crossings", "batched", "bytes", "latency_ns"}) {
    EXPECT_NE(json.find(std::string("\"gate.") + family +
                        ".mpk-shared.c1.c0\""),
              std::string::npos)
        << family;
  }
  // One of the edges crossing net's boundary is declared in the metadata.
  EXPECT_NE(json.find("\"edges\""), std::string::npos);

  // A single-compartment image has no boundaries to report.
  ImageConfig baseline;
  baseline.compartments = {{"net", "app", "sched", "libc", "alloc"}};
  EXPECT_EQ(BoundaryMetricNamesJson(
                ExtractModel(baseline, BuiltinMetaResolver())),
            "[]");
}

TEST(StrictCompat, RejectedConfigNamesTheViolatedClause) {
  const Status status =
      ParseImageConfig(
          "backend = mpk-shared\ncompat = strict\n"
          "compartment net sched\ncompartment app libc alloc\n")
          .status();
  ASSERT_FALSE(status.ok());
  EXPECT_EQ(status.code(), ErrorCode::kFailedPrecondition);
  // The message carries the CompatVerdict violation, not a bare code.
  EXPECT_NE(status.message().find("sched"), std::string::npos);
  EXPECT_NE(status.message().find("Write(*)"), std::string::npos);
}

TEST(StrictCompat, CompatibleConfigParsesAndRoundTrips) {
  Result<ImageConfig> config = ParseImageConfig(
      "backend = mpk-shared\ncompat = strict\n"
      "compartment net\ncompartment app sched libc alloc\n");
  ASSERT_TRUE(config.ok()) << config.status().ToString();
  EXPECT_TRUE(config->strict_compat);
  Result<ImageConfig> reparsed =
      ParseImageConfig(ImageConfigToString(config.value()));
  ASSERT_TRUE(reparsed.ok()) << reparsed.status().ToString();
  EXPECT_TRUE(reparsed->strict_compat);

  // Without the directive the same cohabitation parses fine (the linter,
  // not the parser, is then responsible for flagging it).
  EXPECT_TRUE(ParseImageConfig("backend = mpk-shared\n"
                               "compartment net sched\ncompartment app\n")
                  .ok());
}

}  // namespace
}  // namespace flexos
