#include <gtest/gtest.h>

#include "alloc/freelist_heap.h"
#include "fs/ramfs.h"
#include "support/rng.h"

namespace flexos {
namespace {

class RamFsTest : public ::testing::Test {
 protected:
  RamFsTest() : heap_(space_, 0, 8 << 20), fs_(machine_, space_, heap_) {
    FLEXOS_CHECK(space_.Map(0, 16 << 20, 0).ok(), "map failed");
    scratch_ = heap_.Allocate(64 * 1024).value();
  }

  Machine machine_;
  AddressSpace space_{machine_, "fs-test", 32 << 20};
  FreelistHeap heap_;
  RamFs fs_;
  Gaddr scratch_ = 0;
};

TEST_F(RamFsTest, WriteReadRoundTripHost) {
  ASSERT_TRUE(fs_.WriteFileFromHost("etc/motd", "welcome to flexos").ok());
  EXPECT_TRUE(fs_.Exists("etc/motd"));
  EXPECT_EQ(fs_.FileSize("etc/motd").value(), 17u);
  EXPECT_EQ(fs_.ReadFileToHost("etc/motd").value(), "welcome to flexos");
}

TEST_F(RamFsTest, GuestSideWriteRead) {
  const std::string blob = "guest payload bytes";
  space_.Write(scratch_, blob.data(), blob.size());
  ASSERT_TRUE(fs_.WriteFile("data.bin", scratch_, blob.size()).ok());
  const Gaddr out = scratch_ + 4096;
  EXPECT_EQ(fs_.ReadFile("data.bin", 0, out, 4096).value(), blob.size());
  std::string got(blob.size(), '\0');
  space_.Read(out, got.data(), got.size());
  EXPECT_EQ(got, blob);
}

TEST_F(RamFsTest, MultiChunkFilesSpanBoundaries) {
  std::string blob(3 * RamFs::kChunkBytes + 777, '\0');
  Rng rng(5);
  for (char& c : blob) {
    c = static_cast<char>(rng.NextU64());
  }
  ASSERT_TRUE(fs_.WriteFileFromHost("big", blob).ok());
  EXPECT_EQ(fs_.FileSize("big").value(), blob.size());
  EXPECT_EQ(fs_.ReadFileToHost("big").value(), blob);
}

TEST_F(RamFsTest, OffsetReadsAndEof) {
  ASSERT_TRUE(fs_.WriteFileFromHost("f", "0123456789").ok());
  EXPECT_EQ(fs_.ReadFile("f", 4, scratch_, 3).value(), 3u);
  char out[3];
  space_.Read(scratch_, out, 3);
  EXPECT_EQ(std::string(out, 3), "456");
  EXPECT_EQ(fs_.ReadFile("f", 10, scratch_, 8).value(), 0u);  // At EOF.
  EXPECT_EQ(fs_.ReadFile("f", 99, scratch_, 8).value(), 0u);  // Past EOF.
  EXPECT_EQ(fs_.ReadFile("f", 8, scratch_, 8).value(), 2u);   // Tail clamp.
}

TEST_F(RamFsTest, AppendGrowsAcrossChunks) {
  const std::string piece(1500, 'a');
  space_.Write(scratch_, piece.data(), piece.size());
  for (int i = 0; i < 5; ++i) {
    ASSERT_TRUE(fs_.Append("log", scratch_, piece.size()).ok());
  }
  EXPECT_EQ(fs_.FileSize("log").value(), 5 * piece.size());
  const std::string all = fs_.ReadFileToHost("log").value();
  EXPECT_EQ(all.size(), 5 * piece.size());
  EXPECT_EQ(all.find_first_not_of('a'), std::string::npos);
}

TEST_F(RamFsTest, OverwriteTruncates) {
  ASSERT_TRUE(fs_.WriteFileFromHost("f", std::string(10000, 'x')).ok());
  ASSERT_TRUE(fs_.WriteFileFromHost("f", "short").ok());
  EXPECT_EQ(fs_.FileSize("f").value(), 5u);
  EXPECT_EQ(fs_.ReadFileToHost("f").value(), "short");
}

TEST_F(RamFsTest, DeleteReleasesMemory) {
  const uint64_t before = heap_.stats().bytes_in_use;
  ASSERT_TRUE(
      fs_.WriteFileFromHost("f", std::string(64 * 1024, 'z')).ok());
  EXPECT_GT(heap_.stats().bytes_in_use, before);
  ASSERT_TRUE(fs_.Delete("f").ok());
  EXPECT_EQ(heap_.stats().bytes_in_use, before);
  EXPECT_FALSE(fs_.Exists("f"));
  EXPECT_EQ(fs_.Delete("f").code(), ErrorCode::kNotFound);
}

TEST_F(RamFsTest, ErrorsForMissingAndInvalid) {
  EXPECT_EQ(fs_.ReadFile("ghost", 0, scratch_, 16).code(),
            ErrorCode::kNotFound);
  EXPECT_EQ(fs_.FileSize("ghost").code(), ErrorCode::kNotFound);
  EXPECT_EQ(fs_.WriteFile("", scratch_, 1).code(),
            ErrorCode::kInvalidArgument);
}

TEST_F(RamFsTest, ListIsSortedAndComplete) {
  ASSERT_TRUE(fs_.WriteFileFromHost("b", "2").ok());
  ASSERT_TRUE(fs_.WriteFileFromHost("a", "1").ok());
  ASSERT_TRUE(fs_.WriteFileFromHost("c/d", "3").ok());
  EXPECT_EQ(fs_.List(), (std::vector<std::string>{"a", "b", "c/d"}));
  EXPECT_EQ(fs_.file_count(), 3u);
}

TEST_F(RamFsTest, EmptyFileWorks) {
  ASSERT_TRUE(fs_.WriteFileFromHost("empty", "").ok());
  EXPECT_TRUE(fs_.Exists("empty"));
  EXPECT_EQ(fs_.FileSize("empty").value(), 0u);
  EXPECT_EQ(fs_.ReadFileToHost("empty").value(), "");
}

TEST_F(RamFsTest, StatsTrackIo) {
  ASSERT_TRUE(fs_.WriteFileFromHost("f", "12345").ok());
  (void)fs_.ReadFileToHost("f");
  EXPECT_EQ(fs_.stats().writes, 1u);
  EXPECT_EQ(fs_.stats().bytes_written, 5u);
  EXPECT_EQ(fs_.stats().reads, 1u);
  EXPECT_EQ(fs_.stats().bytes_read, 5u);
}

TEST(RamFsProperty, RandomOpsMatchReferenceModel) {
  Machine machine;
  AddressSpace space(machine, "fs-prop", 32 << 20);
  ASSERT_TRUE(space.Map(0, 16 << 20, 0).ok());
  FreelistHeap heap(space, 0, 8 << 20);
  RamFs fs(machine, space, heap);
  std::map<std::string, std::string> model;
  Rng rng(123);

  for (int step = 0; step < 400; ++step) {
    const std::string path = "f" + std::to_string(rng.NextBelow(8));
    const uint64_t action = rng.NextBelow(4);
    if (action == 0) {  // Write.
      std::string content(rng.NextBelow(3 * RamFs::kChunkBytes), '\0');
      for (char& c : content) {
        c = static_cast<char>('a' + rng.NextBelow(26));
      }
      ASSERT_TRUE(fs.WriteFileFromHost(path, content).ok());
      model[path] = content;
    } else if (action == 1 && model.count(path) != 0) {  // Delete.
      ASSERT_TRUE(fs.Delete(path).ok());
      model.erase(path);
    } else {  // Read + compare.
      if (model.count(path) == 0) {
        ASSERT_EQ(fs.ReadFileToHost(path).code(), ErrorCode::kNotFound);
      } else {
        ASSERT_EQ(fs.ReadFileToHost(path).value(), model.at(path));
      }
    }
    ASSERT_EQ(fs.file_count(), model.size());
  }
}

}  // namespace
}  // namespace flexos
