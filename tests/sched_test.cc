#include <gtest/gtest.h>

#include "sched/coop_scheduler.h"
#include "sched/verified_scheduler.h"

namespace flexos {
namespace {

TEST(CoopScheduler, RunsThreadsToCompletion) {
  Machine machine;
  CoopScheduler sched(machine);
  std::vector<int> order;
  ASSERT_TRUE(sched.Spawn("a", [&] { order.push_back(1); }).ok());
  ASSERT_TRUE(sched.Spawn("b", [&] { order.push_back(2); }).ok());
  EXPECT_TRUE(sched.Run().ok());
  EXPECT_EQ(order, (std::vector<int>{1, 2}));
  EXPECT_EQ(sched.live_threads(), 0u);
}

TEST(CoopScheduler, YieldInterleavesRoundRobin) {
  Machine machine;
  CoopScheduler sched(machine);
  std::string trace;
  ASSERT_TRUE(sched.Spawn("a", [&] {
    for (int i = 0; i < 3; ++i) {
      trace += 'a';
      sched.Yield();
    }
  }).ok());
  ASSERT_TRUE(sched.Spawn("b", [&] {
    for (int i = 0; i < 3; ++i) {
      trace += 'b';
      sched.Yield();
    }
  }).ok());
  EXPECT_TRUE(sched.Run().ok());
  EXPECT_EQ(trace, "ababab");
}

TEST(CoopScheduler, ContextSwitchChargesCycles) {
  Machine machine;
  CoopScheduler sched(machine);
  ASSERT_TRUE(sched.Spawn("a", [&] {
    sched.Yield();
    sched.Yield();
  }).ok());
  EXPECT_TRUE(sched.Run().ok());
  // 3 switches into the thread (initial + 2 resumes after yield), plus the
  // small run-queue memory ops charged at each yield site.
  EXPECT_EQ(sched.context_switches(), 3u);
  EXPECT_GE(machine.clock().cycles(), 3 * machine.costs().context_switch);
  EXPECT_LT(machine.clock().cycles(),
            3 * machine.costs().context_switch + 100);
}

TEST(CoopScheduler, BlockAndWakeViaWaitQueue) {
  Machine machine;
  CoopScheduler sched(machine);
  WaitQueue queue("q");
  std::string trace;
  ASSERT_TRUE(sched.Spawn("waiter", [&] {
    trace += 'w';
    sched.BlockOn(queue);
    trace += 'W';
  }).ok());
  ASSERT_TRUE(sched.Spawn("waker", [&] {
    trace += 'k';
    sched.WakeOne(queue);
    trace += 'K';
  }).ok());
  EXPECT_TRUE(sched.Run().ok());
  EXPECT_EQ(trace, "wkKW");
}

TEST(CoopScheduler, DeadlockDetectedWhenNoIdleProgress) {
  Machine machine;
  CoopScheduler sched(machine);
  WaitQueue queue("q");
  ASSERT_TRUE(sched.Spawn("stuck", [&] { sched.BlockOn(queue); }).ok());
  const Status status = sched.Run();
  EXPECT_EQ(status.code(), ErrorCode::kTimedOut);
}

TEST(CoopScheduler, IdleHandlerCanUnblock) {
  Machine machine;
  CoopScheduler sched(machine);
  WaitQueue queue("q");
  bool woke = false;
  ASSERT_TRUE(sched.Spawn("waiter", [&] {
    sched.BlockOn(queue);
    woke = true;
  }).ok());
  int idle_calls = 0;
  sched.SetIdleHandler([&] {
    ++idle_calls;
    return sched.WakeOne(queue) != nullptr;
  });
  EXPECT_TRUE(sched.Run().ok());
  EXPECT_TRUE(woke);
  // Once to wake the thread, once more as the post-exit drain pass.
  EXPECT_EQ(idle_calls, 2);
}

TEST(CoopScheduler, RemoveReadyThread) {
  Machine machine;
  CoopScheduler sched(machine);
  bool ran = false;
  Thread* victim = sched.Spawn("victim", [&] { ran = true; }).value();
  ASSERT_TRUE(sched.Remove(victim).ok());
  EXPECT_TRUE(sched.Run().ok());
  EXPECT_FALSE(ran);
  EXPECT_EQ(victim->state(), ThreadState::kExited);
}

TEST(CoopScheduler, AddReAddsRemovedThread) {
  Machine machine;
  CoopScheduler sched(machine);
  bool ran = false;
  Thread* thread = sched.Spawn("t", [&] { ran = true; }).value();
  ASSERT_TRUE(sched.Remove(thread).ok());
  ASSERT_TRUE(sched.Add(thread).ok());
  EXPECT_TRUE(sched.Run().ok());
  EXPECT_TRUE(ran);
}

TEST(CoopScheduler, DoubleAddToleratedSilently) {
  // The unverified C scheduler accepts the buggy call (paper §2 contrast).
  Machine machine;
  CoopScheduler sched(machine);
  int runs = 0;
  Thread* thread = sched.Spawn("t", [&] { ++runs; }).value();
  EXPECT_TRUE(sched.Add(thread).ok());  // Already queued.
  EXPECT_TRUE(sched.Run().ok());
  EXPECT_EQ(runs, 1);
}

TEST(CoopScheduler, TrapInThreadSurfacesAsFatal) {
  Machine machine;
  CoopScheduler sched(machine);
  Thread* thread = sched.Spawn("crasher", [] {
    RaiseTrap(TrapInfo{.kind = TrapKind::kProtectionFault,
                       .guest_addr = 0xbad});
  }).value();
  const Status status = sched.Run();
  EXPECT_EQ(status.code(), ErrorCode::kBadState);
  ASSERT_TRUE(thread->fatal_trap().has_value());
  EXPECT_EQ(thread->fatal_trap()->kind, TrapKind::kProtectionFault);
}

TEST(CoopScheduler, ExecContextIsPerThread) {
  Machine machine;
  CoopScheduler sched(machine);
  ASSERT_TRUE(sched.Spawn("one", [&] {
    machine.context().compartment = 11;
    sched.Yield();
    EXPECT_EQ(machine.context().compartment, 11);
  }).ok());
  ASSERT_TRUE(sched.Spawn("two", [&] {
    machine.context().compartment = 22;
    sched.Yield();
    EXPECT_EQ(machine.context().compartment, 22);
  }).ok());
  EXPECT_TRUE(sched.Run().ok());
}

// --- VerifiedScheduler ------------------------------------------------------

TEST(VerifiedScheduler, RunsNormalWorkloads) {
  Machine machine;
  VerifiedScheduler sched(machine);
  int runs = 0;
  for (int i = 0; i < 5; ++i) {
    ASSERT_TRUE(sched.Spawn("t", [&] {
      ++runs;
      sched.Yield();
    }).ok());
  }
  EXPECT_TRUE(sched.Run().ok());
  EXPECT_EQ(runs, 5);
  EXPECT_GT(sched.contract_checks(), 0u);
}

TEST(VerifiedScheduler, ContextSwitchIsSlowerThanC) {
  // Paper §4: 218.6 ns vs 76.6 ns (~3x).
  Machine c_machine;
  CoopScheduler c_sched(c_machine);
  ASSERT_TRUE(c_sched.Spawn("t", [&] { c_sched.Yield(); }).ok());
  EXPECT_TRUE(c_sched.Run().ok());

  Machine v_machine;
  VerifiedScheduler v_sched(v_machine);
  ASSERT_TRUE(v_sched.Spawn("t", [&] { v_sched.Yield(); }).ok());
  EXPECT_TRUE(v_sched.Run().ok());

  const double ratio = static_cast<double>(v_machine.clock().cycles()) /
                       static_cast<double>(c_machine.clock().cycles());
  EXPECT_NEAR(ratio, 218.6 / 76.6, 0.15);
}

TEST(VerifiedScheduler, DoubleAddTrapsAsContractViolation) {
  // The paper's thread_add precondition example: the verified scheduler
  // catches the double add the C scheduler silently tolerates.
  Machine machine;
  VerifiedScheduler sched(machine);
  Thread* thread = sched.Spawn("t", [] {}).value();
  try {
    (void)sched.Add(thread);
    FAIL() << "double thread_add not caught";
  } catch (const TrapException& trap) {
    EXPECT_EQ(trap.info().kind, TrapKind::kContractViolation);
    EXPECT_NE(trap.info().detail.find("thread_add"), std::string::npos);
  }
}

TEST(WaitQueueBasics, FifoOrderAndContains) {
  WaitQueue queue("q");
  Thread a(1, "a", [] {});
  Thread b(2, "b", [] {});
  queue.Enqueue(&a);
  queue.Enqueue(&b);
  EXPECT_EQ(queue.size(), 2u);
  EXPECT_TRUE(queue.Contains(&a));
  EXPECT_EQ(queue.Dequeue(), &a);
  EXPECT_EQ(queue.Dequeue(), &b);
  EXPECT_EQ(queue.Dequeue(), nullptr);
}

}  // namespace
}  // namespace flexos
