// System-level scenarios beyond the basic integration tests:
// multi-connection and pipelined Redis workloads, config-file-driven
// boots, buddy-heap images, protocol edge cases through real connections,
// and explorer-prediction vs. measured-throughput consistency.
#include <gtest/gtest.h>

#include <cstring>
#include <tuple>

#include "apps/iperf_client.h"
#include "apps/iperf_server.h"
#include "apps/redis_client.h"
#include "apps/redis_server.h"
#include "apps/testbed.h"
#include "core/config_parser.h"
#include "core/explorer.h"

namespace flexos {
namespace {

struct MultiRedisResult {
  Status run_status;
  uint64_t total_ops = 0;
  uint64_t errors = 0;
  RedisServerResult server;
};

MultiRedisResult RunMultiRedis(const TestbedConfig& config,
                               const RedisWorkload& base, int conns) {
  Testbed bed(config);
  RedisServerResult server_result;
  RedisServerOptions options;
  options.max_conns = conns;
  SpawnRedisServer(bed, options, &server_result);

  RemoteHub hub(bed.link());
  std::vector<std::unique_ptr<RedisRemoteClient>> clients;
  std::vector<std::unique_ptr<RemoteTcpPeer>> peers;
  for (int i = 0; i < conns; ++i) {
    RedisWorkload workload = base;
    workload.key_prefix = "client" + std::to_string(i);
    clients.push_back(
        std::make_unique<RedisRemoteClient>(bed.machine(), workload));
    RemoteTcpConfig peer_config;
    peer_config.server_port = 6379;
    peer_config.local_port = static_cast<Port>(41000 + i);
    peers.push_back(std::make_unique<RemoteTcpPeer>(
        bed.machine(), bed.link(), peer_config, *clients.back(), false));
    hub.Register(peers.back().get());
    bed.AddPeer(peers.back().get());
    peers.back()->Connect();
  }
  MultiRedisResult out;
  out.run_status = bed.Run();
  out.server = server_result;
  for (const auto& client : clients) {
    out.total_ops += client->completed_ops();
    out.errors += client->errors();
  }
  return out;
}

TEST(SystemRedis, EightConcurrentConnectionsCompleteEverything) {
  TestbedConfig config;
  config.image = BaselineConfig(DefaultLibs());
  RedisWorkload workload;
  workload.measured_ops = 30;
  workload.payload_bytes = 40;
  const MultiRedisResult result = RunMultiRedis(config, workload, 8);
  EXPECT_TRUE(result.run_status.ok()) << result.run_status.ToString();
  EXPECT_EQ(result.total_ops, 8u * 30u);
  EXPECT_EQ(result.errors, 0u);
  EXPECT_EQ(result.server.sets, 8u * 30u);
  EXPECT_TRUE(result.server.ok);
}

TEST(SystemRedis, ConcurrentConnectionsUnderMpkIsolation) {
  TestbedConfig config;
  config.image.backend = IsolationBackend::kMpkSwitchedStack;
  config.image.compartments = {
      {"net"}, {"sched"}, {"app", "libc", "alloc"}};
  RedisWorkload workload;
  workload.measure_gets = true;
  workload.warmup_sets = 8;
  workload.key_space = 8;
  workload.measured_ops = 20;
  const MultiRedisResult result = RunMultiRedis(config, workload, 4);
  EXPECT_TRUE(result.run_status.ok()) << result.run_status.ToString();
  EXPECT_EQ(result.total_ops, 4u * 28u);
  EXPECT_EQ(result.errors, 0u);
  EXPECT_EQ(result.server.hits, 4u * 20u);  // Disjoint keyspaces all hit.
}

TEST(SystemRedis, PipelinedClientGetsEveryReply) {
  TestbedConfig config;
  config.image = BaselineConfig(DefaultLibs());
  RedisWorkload workload;
  workload.measured_ops = 60;
  workload.payload_bytes = 20;
  workload.pipeline = 8;
  const MultiRedisResult result = RunMultiRedis(config, workload, 1);
  EXPECT_TRUE(result.run_status.ok()) << result.run_status.ToString();
  EXPECT_EQ(result.total_ops, 60u);
  EXPECT_EQ(result.errors, 0u);
}

TEST(SystemRedis, PipeliningImprovesThroughputOfOneConnection) {
  auto measure = [](uint64_t pipeline) {
    TestbedConfig config;
    config.image = BaselineConfig(DefaultLibs());
    Testbed bed(config);
    RedisServerResult server_result;
    SpawnRedisServer(bed, RedisServerOptions{}, &server_result);
    RedisWorkload workload;
    workload.measured_ops = 60;
    workload.pipeline = pipeline;
    RedisRemoteClient client(bed.machine(), workload);
    RemoteTcpConfig peer_config;
    peer_config.server_port = 6379;
    RemoteTcpPeer peer(bed.machine(), bed.link(), peer_config, client);
    bed.AddPeer(&peer);
    peer.Connect();
    EXPECT_TRUE(bed.Run().ok());
    return client.MeasuredOpsPerSec();
  };
  EXPECT_GT(measure(8), 1.5 * measure(1));
}

// --- Raw RESP protocol edges through a real connection ----------------------

class RawRespRemote final : public RemoteApp {
 public:
  explicit RawRespRemote(std::string to_send) : to_send_(std::move(to_send)) {}
  size_t ProduceData(uint8_t* out, size_t max) override {
    const size_t n = std::min(max, to_send_.size() - sent_);
    std::memcpy(out, to_send_.data() + sent_, n);
    sent_ += n;
    return n;
  }
  bool Finished() const override {
    // Half-close after sending; replies still flow back.
    return sent_ == to_send_.size();
  }
  void OnReceive(const uint8_t* data, size_t len) override {
    received_.append(reinterpret_cast<const char*>(data), len);
  }
  const std::string& received() const { return received_; }

 private:
  std::string to_send_;
  size_t sent_ = 0;
  std::string received_;
};

std::string RunRawResp(const std::string& wire_bytes,
                       RedisServerResult* server_result) {
  TestbedConfig config;
  config.image = BaselineConfig(DefaultLibs());
  Testbed bed(config);
  SpawnRedisServer(bed, RedisServerOptions{}, server_result);
  RawRespRemote app(wire_bytes);
  RemoteTcpConfig peer_config;
  peer_config.server_port = 6379;
  RemoteTcpPeer peer(bed.machine(), bed.link(), peer_config, app);
  bed.AddPeer(&peer);
  peer.Connect();
  EXPECT_TRUE(bed.Run().ok());
  return app.received();
}

TEST(SystemResp, PingSetGetDelSequence) {
  RedisServerResult server;
  const std::string wire =
      EncodeRespCommand({"PING"}) + EncodeRespCommand({"SET", "k", "hello"}) +
      EncodeRespCommand({"GET", "k"}) + EncodeRespCommand({"DEL", "k"}) +
      EncodeRespCommand({"GET", "k"}) + EncodeRespCommand({"DEL", "k"});
  const std::string replies = RunRawResp(wire, &server);
  EXPECT_EQ(replies,
            "+PONG\r\n+OK\r\n$5\r\nhello\r\n:1\r\n$-1\r\n:0\r\n");
  EXPECT_EQ(server.commands, 6u);
  EXPECT_EQ(server.protocol_errors, 0u);
}

TEST(SystemResp, UnknownCommandGetsError) {
  RedisServerResult server;
  const std::string replies =
      RunRawResp(EncodeRespCommand({"FLUSHALL"}), &server);
  EXPECT_EQ(replies, "-ERR unknown command\r\n");
  EXPECT_EQ(server.protocol_errors, 1u);
}

TEST(SystemResp, MalformedInputGetsProtocolError) {
  RedisServerResult server;
  const std::string replies = RunRawResp("GARBAGE\r\n", &server);
  EXPECT_EQ(replies, "-ERR protocol error\r\n");
  EXPECT_EQ(server.protocol_errors, 1u);
}

TEST(SystemResp, OverwriteReplacesValue) {
  RedisServerResult server;
  const std::string wire = EncodeRespCommand({"SET", "k", "one"}) +
                           EncodeRespCommand({"SET", "k", "twotwo"}) +
                           EncodeRespCommand({"GET", "k"});
  const std::string replies = RunRawResp(wire, &server);
  EXPECT_EQ(replies, "+OK\r\n+OK\r\n$6\r\ntwotwo\r\n");
}

TEST(SystemResp, EmptyValueRoundTrips) {
  RedisServerResult server;
  const std::string wire =
      EncodeRespCommand({"SET", "k", ""}) + EncodeRespCommand({"GET", "k"});
  const std::string replies = RunRawResp(wire, &server);
  EXPECT_EQ(replies, "+OK\r\n$0\r\n\r\n");
}

// --- Config-file-driven boots -----------------------------------------------

TEST(SystemConfig, TextConfigBootsAndRuns) {
  Result<ImageConfig> image = ParseImageConfig(
      "backend = mpk-shared\n"
      "compartment net\n"
      "compartment app sched libc alloc\n"
      "harden net\n"
      "heap_bytes = 16M\n"
      "shared_bytes = 16M\n");
  ASSERT_TRUE(image.ok()) << image.status().ToString();
  TestbedConfig config;
  config.image = image.value();

  Testbed bed(config);
  IperfServerResult server_result;
  IperfServerOptions options;
  options.recv_buffer_bytes = 4096;
  SpawnIperfServer(bed, options, &server_result);
  IperfRemoteClient client(64 * 1024);
  RemoteTcpPeer peer(bed.machine(), bed.link(), RemoteTcpConfig{}, client);
  bed.AddPeer(&peer);
  peer.Connect();
  EXPECT_TRUE(bed.Run().ok());
  EXPECT_EQ(server_result.bytes_received, 64u * 1024);
}

TEST(SystemConfig, BuddyHeapImageWorksEndToEnd) {
  TestbedConfig config;
  config.image = BaselineConfig(DefaultLibs());
  config.image.heap_kind = HeapKind::kBuddy;
  Testbed bed(config);
  IperfServerResult server_result;
  IperfServerOptions options;
  SpawnIperfServer(bed, options, &server_result);
  IperfRemoteClient client(128 * 1024);
  RemoteTcpPeer peer(bed.machine(), bed.link(), RemoteTcpConfig{}, client);
  bed.AddPeer(&peer);
  peer.Connect();
  EXPECT_TRUE(bed.Run().ok());
  EXPECT_EQ(server_result.bytes_received, 128u * 1024);
}

// --- Explorer predictions vs. measured reality --------------------------------

TEST(SystemExplorer, PredictedOrderingMatchesMeasuredOrdering) {
  // The analytic cost model must agree with the simulator on the backend
  // ordering for the {net}|{rest} layout at a small recv buffer.
  auto measured_gbps = [](IsolationBackend backend) {
    TestbedConfig config;
    if (backend == IsolationBackend::kNone) {
      config.image = BaselineConfig(DefaultLibs());
    } else {
      config.image.backend = backend;
      config.image.compartments = {{"net"},
                                   {"app", "sched", "libc", "alloc"}};
    }
    Testbed bed(config);
    IperfServerResult server_result;
    IperfServerOptions options;
    options.recv_buffer_bytes = 256;
    SpawnIperfServer(bed, options, &server_result);
    IperfRemoteClient client(128 * 1024);
    RemoteTcpPeer peer(bed.machine(), bed.link(), RemoteTcpConfig{},
                       client);
    bed.AddPeer(&peer);
    peer.Connect();
    EXPECT_TRUE(bed.Run().ok());
    return static_cast<double>(server_result.bytes_received) /
           bed.machine().clock().NowSeconds();
  };

  const CostModel costs;
  const double m_none = measured_gbps(IsolationBackend::kNone);
  const double m_mpk = measured_gbps(IsolationBackend::kMpkSharedStack);
  const double m_vm = measured_gbps(IsolationBackend::kVmRpc);
  EXPECT_GT(m_none, m_mpk);
  EXPECT_GT(m_mpk, m_vm);
  // Analytic model agrees.
  EXPECT_LT(GateRoundTripCycles(IsolationBackend::kNone, costs),
            GateRoundTripCycles(IsolationBackend::kMpkSharedStack, costs));
  EXPECT_LT(GateRoundTripCycles(IsolationBackend::kMpkSharedStack, costs),
            GateRoundTripCycles(IsolationBackend::kVmRpc, costs));
}

TEST(SystemDeterminism, IdenticalRunsProduceIdenticalCycleCounts) {
  // The repository's headline reproducibility claim: the simulation is
  // deterministic, so two identical runs agree to the cycle.
  auto run_once = [] {
    TestbedConfig config;
    config.image.backend = IsolationBackend::kMpkSwitchedStack;
    config.image.compartments = {
        {"net"}, {"app", "sched", "libc", "alloc", "fs"}};
    config.link.loss_probability = 0.01;  // Loss is seeded, too.
    config.link.seed = 5;
    Testbed bed(config);
    IperfServerResult server_result;
    IperfServerOptions options;
    options.recv_buffer_bytes = 2048;
    SpawnIperfServer(bed, options, &server_result);
    IperfRemoteClient client(128 * 1024);
    RemoteTcpPeer peer(bed.machine(), bed.link(), RemoteTcpConfig{},
                       client);
    bed.AddPeer(&peer);
    peer.Connect();
    EXPECT_TRUE(bed.Run().ok());
    return std::make_tuple(bed.machine().clock().cycles(),
                           bed.machine().stats().wrpkru_count,
                           bed.stack().tcp().stats().retransmits,
                           server_result.bytes_received);
  };
  const auto first = run_once();
  const auto second = run_once();
  EXPECT_EQ(first, second);
  EXPECT_EQ(std::get<3>(first), 128u * 1024);
}

TEST(SystemStats, CrossingMatrixAccountsForIsolationLayout) {
  TestbedConfig config;
  config.image.backend = IsolationBackend::kMpkSharedStack;
  config.image.compartments = {{"net"}, {"app", "sched", "libc", "alloc"}};
  Testbed bed(config);
  IperfServerResult server_result;
  IperfServerOptions options;
  SpawnIperfServer(bed, options, &server_result);
  IperfRemoteClient client(64 * 1024);
  RemoteTcpPeer peer(bed.machine(), bed.link(), RemoteTcpConfig{}, client);
  bed.AddPeer(&peer);
  peer.Connect();
  ASSERT_TRUE(bed.Run().ok());

  const ImageStats& stats = bed.image().stats();
  EXPECT_GT(stats.cross_compartment_calls, 0u);
  EXPECT_GT(stats.same_compartment_calls, 0u);
  EXPECT_GT(stats.leaf_calls, 0u);
  // Every WRPKRU pair corresponds to one MPK crossing.
  EXPECT_EQ(bed.machine().stats().wrpkru_count,
            2 * stats.cross_compartment_calls);
  // The crossing matrix only contains pairs that differ, and every
  // recorded boundary carries traffic (no batching here, so every byte
  // travelled through a full crossing).
  for (const auto& [pair, boundary] : stats.crossings) {
    EXPECT_NE(pair.first, pair.second);
    EXPECT_GT(boundary.crossings, 0u);
    EXPECT_EQ(boundary.batched, 0u);
    EXPECT_EQ(boundary.bytes,
              boundary.crossings * (kGateArgBytes + kGateRetBytes));
  }
}

}  // namespace
}  // namespace flexos
