// End-to-end integration tests: full images (iperf, redis-lite) under every
// isolation backend, exercising app -> net -> libc -> sched gate chains,
// the TCP handshake/data/teardown path over the modeled link, and the
// equivalence of application-level results across backends.
#include <gtest/gtest.h>

#include "apps/iperf_client.h"
#include "apps/iperf_server.h"
#include "apps/redis_client.h"
#include "apps/redis_server.h"
#include "apps/testbed.h"

namespace flexos {
namespace {

ImageConfig SplitNetConfig(IsolationBackend backend) {
  // {net} | {app, sched, libc, alloc} — the paper's "NW only" model.
  ImageConfig config;
  config.backend = backend;
  config.compartments = {
      {std::string(kLibNet)},
      {std::string(kLibApp), std::string(kLibSched), std::string(kLibLibc),
       std::string(kLibAlloc)}};
  return config;
}

struct IperfRunResult {
  IperfServerResult server;
  uint64_t client_acked = 0;
  double gbps = 0;
  Status run_status;
};

IperfRunResult RunIperf(const TestbedConfig& config, uint64_t total_bytes,
                        uint64_t recv_buffer) {
  Testbed bed(config);
  IperfServerResult server_result;
  IperfServerOptions options;
  options.recv_buffer_bytes = recv_buffer;
  SpawnIperfServer(bed, options, &server_result);

  IperfRemoteClient client_app(total_bytes);
  RemoteTcpPeer peer(bed.machine(), bed.link(), RemoteTcpConfig{},
                     client_app);
  bed.AddPeer(&peer);
  peer.Connect();

  IperfRunResult out;
  out.run_status = bed.Run();
  out.server = server_result;
  out.client_acked = peer.stats().bytes_acked;
  const double seconds = bed.machine().clock().NowSeconds();
  if (seconds > 0) {
    out.gbps = static_cast<double>(server_result.bytes_received) * 8.0 /
               seconds / 1e9;
  }
  return out;
}

TEST(IntegrationIperf, BaselineTransfersEveryByte) {
  TestbedConfig config;
  config.image = BaselineConfig(DefaultLibs());
  const uint64_t kTotal = 512 * 1024;
  IperfRunResult result = RunIperf(config, kTotal, 16 * 1024);
  EXPECT_TRUE(result.run_status.ok()) << result.run_status.ToString();
  EXPECT_TRUE(result.server.ok);
  EXPECT_EQ(result.server.bytes_received, kTotal);
  EXPECT_EQ(result.client_acked, kTotal);
  EXPECT_GT(result.gbps, 0.1);
}

TEST(IntegrationIperf, MpkSharedStackTransfersEveryByte) {
  TestbedConfig config;
  config.image = SplitNetConfig(IsolationBackend::kMpkSharedStack);
  const uint64_t kTotal = 256 * 1024;
  IperfRunResult result = RunIperf(config, kTotal, 8 * 1024);
  EXPECT_TRUE(result.run_status.ok()) << result.run_status.ToString();
  EXPECT_EQ(result.server.bytes_received, kTotal);
}

TEST(IntegrationIperf, MpkSwitchedStackTransfersEveryByte) {
  TestbedConfig config;
  config.image = SplitNetConfig(IsolationBackend::kMpkSwitchedStack);
  const uint64_t kTotal = 256 * 1024;
  IperfRunResult result = RunIperf(config, kTotal, 8 * 1024);
  EXPECT_TRUE(result.run_status.ok()) << result.run_status.ToString();
  EXPECT_EQ(result.server.bytes_received, kTotal);
}

TEST(IntegrationIperf, VmRpcTransfersEveryByte) {
  TestbedConfig config;
  config.image = SplitNetConfig(IsolationBackend::kVmRpc);
  const uint64_t kTotal = 256 * 1024;
  IperfRunResult result = RunIperf(config, kTotal, 8 * 1024);
  EXPECT_TRUE(result.run_status.ok()) << result.run_status.ToString();
  EXPECT_EQ(result.server.bytes_received, kTotal);
}

TEST(IntegrationIperf, IsolationCostsOrderAsExpected) {
  // baseline >= mpk-shared >= mpk-switched >= vm-rpc in throughput, at a
  // small recv buffer where per-call costs dominate (paper Fig. 3 shape).
  const uint64_t kTotal = 128 * 1024;
  const uint64_t kBuf = 256;

  TestbedConfig base;
  base.image = BaselineConfig(DefaultLibs());
  const double baseline = RunIperf(base, kTotal, kBuf).gbps;

  TestbedConfig shared;
  shared.image = SplitNetConfig(IsolationBackend::kMpkSharedStack);
  const double mpk_shared = RunIperf(shared, kTotal, kBuf).gbps;

  TestbedConfig switched;
  switched.image = SplitNetConfig(IsolationBackend::kMpkSwitchedStack);
  const double mpk_switched = RunIperf(switched, kTotal, kBuf).gbps;

  TestbedConfig vm;
  vm.image = SplitNetConfig(IsolationBackend::kVmRpc);
  const double vm_rpc = RunIperf(vm, kTotal, kBuf).gbps;

  EXPECT_GT(baseline, mpk_shared);
  EXPECT_GE(mpk_shared, mpk_switched);
  EXPECT_GT(mpk_switched, vm_rpc);
}

TEST(IntegrationIperf, LossyLinkStillTransfersEveryByte) {
  TestbedConfig config;
  config.image = BaselineConfig(DefaultLibs());
  config.link.loss_probability = 0.02;
  config.link.seed = 7;
  const uint64_t kTotal = 64 * 1024;
  IperfRunResult result = RunIperf(config, kTotal, 4 * 1024);
  EXPECT_TRUE(result.run_status.ok()) << result.run_status.ToString();
  EXPECT_EQ(result.server.bytes_received, kTotal);
  EXPECT_EQ(result.client_acked, kTotal);
}

struct RedisRunResult {
  RedisServerResult server;
  uint64_t client_completed = 0;
  uint64_t client_errors = 0;
  Status run_status;
};

RedisRunResult RunRedis(const TestbedConfig& config,
                        const RedisWorkload& workload) {
  Testbed bed(config);
  RedisServerResult server_result;
  RedisServerOptions options;
  SpawnRedisServer(bed, options, &server_result);

  RedisRemoteClient client_app(bed.machine(), workload);
  RemoteTcpConfig peer_config;
  peer_config.server_port = options.port;
  RemoteTcpPeer peer(bed.machine(), bed.link(), peer_config, client_app);
  bed.AddPeer(&peer);
  peer.Connect();

  RedisRunResult out;
  out.run_status = bed.Run();
  out.server = server_result;
  out.client_completed = client_app.completed_ops();
  out.client_errors = client_app.errors();
  return out;
}

TEST(IntegrationRedis, SetWorkloadCompletesAllOps) {
  TestbedConfig config;
  config.image = BaselineConfig(DefaultLibs());
  RedisWorkload workload;
  workload.measured_ops = 50;
  workload.payload_bytes = 50;
  RedisRunResult result = RunRedis(config, workload);
  EXPECT_TRUE(result.run_status.ok()) << result.run_status.ToString();
  EXPECT_TRUE(result.server.ok);
  EXPECT_EQ(result.client_completed, 50u);
  EXPECT_EQ(result.client_errors, 0u);
  EXPECT_EQ(result.server.sets, 50u);
}

TEST(IntegrationRedis, GetWorkloadHitsPreloadedKeys) {
  TestbedConfig config;
  config.image = BaselineConfig(DefaultLibs());
  RedisWorkload workload;
  workload.measure_gets = true;
  workload.warmup_sets = 16;
  workload.key_space = 16;
  workload.measured_ops = 40;
  workload.payload_bytes = 100;
  RedisRunResult result = RunRedis(config, workload);
  EXPECT_TRUE(result.run_status.ok()) << result.run_status.ToString();
  EXPECT_EQ(result.client_completed, 56u);
  EXPECT_EQ(result.server.gets, 40u);
  EXPECT_EQ(result.server.hits, 40u);
  EXPECT_EQ(result.client_errors, 0u);
}

TEST(IntegrationRedis, WorksUnderEveryBackend) {
  for (IsolationBackend backend :
       {IsolationBackend::kMpkSharedStack,
        IsolationBackend::kMpkSwitchedStack, IsolationBackend::kVmRpc}) {
    TestbedConfig config;
    config.image = SplitNetConfig(backend);
    RedisWorkload workload;
    workload.measured_ops = 20;
    workload.payload_bytes = 50;
    RedisRunResult result = RunRedis(config, workload);
    EXPECT_TRUE(result.run_status.ok())
        << IsolationBackendName(backend) << ": "
        << result.run_status.ToString();
    EXPECT_EQ(result.client_completed, 20u)
        << IsolationBackendName(backend);
    EXPECT_EQ(result.client_errors, 0u) << IsolationBackendName(backend);
  }
}

TEST(IntegrationRedis, VerifiedSchedulerProducesSameResults) {
  TestbedConfig config;
  config.image = BaselineConfig(DefaultLibs());
  config.verified_scheduler = true;
  RedisWorkload workload;
  workload.measured_ops = 25;
  RedisRunResult result = RunRedis(config, workload);
  EXPECT_TRUE(result.run_status.ok()) << result.run_status.ToString();
  EXPECT_EQ(result.client_completed, 25u);
  EXPECT_EQ(result.client_errors, 0u);
}

}  // namespace
}  // namespace flexos
