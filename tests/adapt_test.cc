// flexadapt (DESIGN.md §16): runtime backend re-placement and the adaptive
// policy engine. Covers the transition protocol (route-epoch invalidation of
// held handles, batch pinning + deferred swaps, recorder re-pointing,
// transition cost charged to the clock and never to the latency
// histograms), the policy core (demote on crossing-cost, lint veto of
// illegal demotions, trap-driven promotion, byte-identical decision logs),
// the adapt config directives, and the FL015 lint rule.
#include <gtest/gtest.h>

#include "adapt/adapt.h"
#include "analysis/flexlint.h"
#include "core/config_parser.h"
#include "core/gate_costs.h"
#include "core/image_builder.h"
#include "fault/supervisor.h"
#include "obs/names.h"

namespace flexos {
namespace {

// {net} = c0 | {app, sched, libc, alloc} = c1 — the paper's basic split.
ImageConfig TwoCompartments(IsolationBackend backend) {
  ImageConfig config;
  config.backend = backend;
  config.compartments = {{"net"}, {"app", "sched", "libc", "alloc"}};
  return config;
}

uint64_t CrossCycles(const Machine& machine, IsolationBackend backend) {
  return PredictedCrossingCycles(machine.costs(), backend, kGateArgBytes,
                                 kGateRetBytes);
}

// --- Transition protocol --------------------------------------------------

TEST(BackendSwap, HeldRouteHandleReresolvesAcrossSwap) {
  Machine machine;
  ImageBuilder builder(machine);
  auto image =
      builder.Build(TwoCompartments(IsolationBackend::kMpkSwitchedStack))
          .value();
  const RouteHandle route = image->Resolve(kLibApp, kLibNet);

  uint64_t before = machine.clock().cycles();
  image->Call(route, [] {});
  EXPECT_EQ(machine.clock().cycles() - before,
            CrossCycles(machine, IsolationBackend::kMpkSwitchedStack));

  const uint64_t epoch = image->route_epoch();
  before = machine.clock().cycles();
  EXPECT_TRUE(image->SetBoundaryBackend(
      1, 0, IsolationBackend::kMpkSharedStack));
  // The one-time transition cost lands on the clock, nowhere else.
  EXPECT_EQ(machine.clock().cycles() - before,
            TransitionCycles(machine.costs(),
                             IsolationBackend::kMpkSwitchedStack,
                             IsolationBackend::kMpkSharedStack));
  EXPECT_GT(image->route_epoch(), epoch);
  EXPECT_EQ(image->BoundaryBackend(1, 0),
            IsolationBackend::kMpkSharedStack);

  // The stale handle transparently re-resolves and charges the new gate.
  const uint64_t reresolves = image->route_reresolves();
  before = machine.clock().cycles();
  image->Call(route, [] {});
  EXPECT_EQ(machine.clock().cycles() - before,
            CrossCycles(machine, IsolationBackend::kMpkSharedStack));
  EXPECT_GT(image->route_reresolves(), reresolves);
  EXPECT_EQ(image->EffectiveBackend(route),
            IsolationBackend::kMpkSharedStack);
}

TEST(BackendSwap, GateBatchPinsBackendAndDefersSwapUntilFlush) {
  Machine machine;
  ImageBuilder builder(machine);
  auto image =
      builder.Build(TwoCompartments(IsolationBackend::kMpkSwitchedStack))
          .value();
  const RouteHandle route = image->Resolve(kLibApp, kLibNet);

  GateBatch batch(*image, route);
  batch.Run([] {});
  // Mid-batch the boundary is in flight: the swap must park, not tear the
  // gate out from under the pinned session.
  EXPECT_FALSE(image->SetBoundaryBackend(
      1, 0, IsolationBackend::kMpkSharedStack));
  EXPECT_EQ(image->BoundaryBackend(1, 0),
            IsolationBackend::kMpkSwitchedStack);
  batch.Run([] {});
  batch.Flush();
  // The last in-flight crossing drained: the deferred swap applies.
  EXPECT_EQ(image->deferred_swaps_applied(), 1u);
  EXPECT_EQ(image->BoundaryBackend(1, 0),
            IsolationBackend::kMpkSharedStack);

  const uint64_t before = machine.clock().cycles();
  image->Call(route, [] {});
  EXPECT_EQ(machine.clock().cycles() - before,
            CrossCycles(machine, IsolationBackend::kMpkSharedStack));
}

TEST(BackendSwap, RecorderRepointsMetricsToNewBackendNames) {
  Machine machine;
  ImageBuilder builder(machine);
  auto image =
      builder.Build(TwoCompartments(IsolationBackend::kMpkSwitchedStack))
          .value();
  const RouteHandle route = image->Resolve(kLibApp, kLibNet);
  const std::string old_name =
      obs::GateMetricName("crossings", "mpk-switched", 1, 0);
  const std::string new_name =
      obs::GateMetricName("crossings", "mpk-shared", 1, 0);

  image->Call(route, [] {});
  EXPECT_EQ(machine.metrics().CounterValue(old_name), 1u);

  const std::string old_lat =
      obs::GateMetricName("latency_ns", "mpk-switched", 1, 0);
  const uint64_t old_lat_count =
      machine.metrics().GetHistogram(old_lat).count();
  ASSERT_TRUE(image->SetBoundaryBackend(
      1, 0, IsolationBackend::kMpkSharedStack));
  // The swap itself records nothing in the histograms (transition cost is
  // clock-only).
  EXPECT_EQ(machine.metrics().GetHistogram(old_lat).count(), old_lat_count);

  // Post-swap crossings attribute to the new backend's names; the old
  // counters freeze. This is the regression test for the recorder
  // re-pointing half of SetBoundaryBackend — without it, post-swap
  // crossings would keep inflating the mpk-switched row.
  image->Call(route, [] {});
  image->Call(route, [] {});
  EXPECT_EQ(machine.metrics().CounterValue(old_name), 1u);
  EXPECT_EQ(machine.metrics().CounterValue(new_name), 2u);
  const std::string new_lat =
      obs::GateMetricName("latency_ns", "mpk-shared", 1, 0);
  EXPECT_EQ(machine.metrics().GetHistogram(new_lat).count(), 2u);
  EXPECT_EQ(machine.metrics().GetHistogram(new_lat).Mean(),
            static_cast<double>(machine.clock().CyclesToNanos(
                CrossCycles(machine, IsolationBackend::kMpkSharedStack))));
}

// --- Policy engine --------------------------------------------------------

// Drives `ops` chatty app->net crossings under flexwatch windows and
// returns the engine's decision log.
std::string RunChattyEngine(const AdaptConfig& adapt, IsolationBackend start,
                            uint64_t ops, uint64_t* demotions,
                            uint64_t* vetoes,
                            IsolationBackend* final_backend) {
  Machine machine;
  // Window wide enough that a demotion's predicted per-window saving
  // clears the modeled transition cost (adapt_mpk_reprogram).
  machine.timeseries().Enable(100'000);
  ImageBuilder builder(machine);
  ImageConfig config = TwoCompartments(start);
  auto image = builder.Build(config).value();
  adapt::AdaptiveIsolationEngine engine(*image, adapt);
  machine.timeseries().SetWindowHook(
      [&engine](const obs::WindowSnapshot& snapshot) {
        engine.OnWindow(snapshot);
      });
  const RouteHandle route = image->Resolve(kLibApp, kLibNet);
  for (uint64_t i = 0; i < ops; ++i) {
    image->Call(route, [&machine] { machine.ChargeCompute(100); });
    machine.PollTimeSeries();
  }
  machine.timeseries().FinalizeTail(machine.max_cycles());
  if (demotions != nullptr) {
    *demotions = engine.demotions();
  }
  if (vetoes != nullptr) {
    *vetoes = engine.vetoes();
  }
  if (final_backend != nullptr) {
    *final_backend = image->BoundaryBackend(1, 0);
  }
  return engine.ToJson();
}

TEST(AdaptiveEngine, DemotesChattyBoundaryAndLogsDecision) {
  AdaptConfig adapt;
  adapt.enabled = true;
  adapt.min_crossings = 8;
  adapt.allow.push_back({1, 0, IsolationBackend::kMpkSharedStack});
  uint64_t demotions = 0;
  uint64_t vetoes = 0;
  IsolationBackend final_backend = IsolationBackend::kNone;
  const std::string json =
      RunChattyEngine(adapt, IsolationBackend::kMpkSwitchedStack, 2000,
                      &demotions, &vetoes, &final_backend);
  EXPECT_EQ(demotions, 1u);
  EXPECT_EQ(vetoes, 0u);  // shared -> none has no allow row: never proposed.
  EXPECT_EQ(final_backend, IsolationBackend::kMpkSharedStack);
  EXPECT_NE(json.find("\"schema\":\"flexos-adapt-v1\""), std::string::npos);
  EXPECT_NE(json.find("\"kind\":\"demote\""), std::string::npos);
  EXPECT_NE(json.find("\"reason\":\"crossing-cost\""), std::string::npos);
  EXPECT_NE(json.find("\"applied\":true"), std::string::npos);
}

TEST(AdaptiveEngine, DecisionLogIsReplayIdentical) {
  AdaptConfig adapt;
  adapt.enabled = true;
  adapt.min_crossings = 8;
  adapt.allow.push_back({1, 0, IsolationBackend::kMpkSharedStack});
  const std::string first = RunChattyEngine(
      adapt, IsolationBackend::kMpkSwitchedStack, 2000, nullptr, nullptr,
      nullptr);
  const std::string second = RunChattyEngine(
      adapt, IsolationBackend::kMpkSwitchedStack, 2000, nullptr, nullptr,
      nullptr);
  EXPECT_FALSE(first.empty());
  EXPECT_EQ(first, second);
}

TEST(AdaptiveEngine, LintVetoesDemotionToNoneAndNeverAppliesIt) {
  AdaptConfig adapt;
  adapt.enabled = true;
  adapt.min_crossings = 8;
  // Explicitly bless the illegal rung: the lint gate must still refuse it
  // (net and the app group may not share a trust domain).
  adapt.allow.push_back({1, 0, IsolationBackend::kNone});
  uint64_t demotions = 0;
  uint64_t vetoes = 0;
  IsolationBackend final_backend = IsolationBackend::kNone;
  const std::string json =
      RunChattyEngine(adapt, IsolationBackend::kMpkSharedStack, 2000,
                      &demotions, &vetoes, &final_backend);
  EXPECT_EQ(demotions, 0u);
  EXPECT_GE(vetoes, 1u);
  EXPECT_EQ(final_backend, IsolationBackend::kMpkSharedStack);
  EXPECT_NE(json.find("\"kind\":\"veto\""), std::string::npos);
  EXPECT_NE(json.find("\"reason\":\"veto:"), std::string::npos);
  // A veto is never applied — grep the log for the forbidden combination.
  EXPECT_EQ(json.find("\"kind\":\"veto\",\"applied\":true"),
            std::string::npos);
}

TEST(AdaptiveEngine, ContainedTrapPromotesBoundary) {
  Machine machine;
  ImageBuilder builder(machine);
  auto image =
      builder.Build(TwoCompartments(IsolationBackend::kMpkSharedStack))
          .value();
  fault::CompartmentSupervisor supervisor(*image);
  image->SetFaultHandler(&supervisor);
  fault::FaultPlan plan;
  fault::FaultRule rule;
  rule.site = fault::FaultSite::kGateCross;
  rule.kind = fault::FaultKind::kProtectionFault;
  rule.compartment = 0;
  rule.after = 3;
  rule.count = 1;
  plan.rules = {rule};
  machine.injector().LoadPlan(plan);

  AdaptConfig adapt;
  adapt.enabled = true;
  adapt::AdaptiveIsolationEngine engine(*image, adapt);
  supervisor.SetTrapObserver([&engine](int from_comp, int to_comp) {
    engine.OnContainedTrap(from_comp, to_comp);
  });

  const RouteHandle route = image->Resolve(kLibApp, kLibNet);
  uint64_t completed = 0;
  for (int i = 0; i < 8 && completed < 5; ++i) {
    const Status status = image->TryCall(route, [] {});
    if (status.ok()) {
      ++completed;
      continue;
    }
    const uint64_t deadline = supervisor.NextRestartCycles();
    if (deadline != fault::CompartmentSupervisor::kNoRestartPending &&
        deadline > machine.clock().cycles()) {
      machine.clock().AdvanceTo(deadline);
    }
  }
  EXPECT_EQ(completed, 5u);
  EXPECT_EQ(engine.promotions(), 1u);
  // The trap fired inside the crossing, so the swap deferred behind it and
  // applied when the trapped call drained.
  EXPECT_EQ(image->BoundaryBackend(1, 0),
            IsolationBackend::kMpkSwitchedStack);
  ASSERT_EQ(engine.decisions().size(), 1u);
  const adapt::AdaptDecision& decision = engine.decisions().front();
  EXPECT_EQ(decision.kind, adapt::DecisionKind::kPromote);
  EXPECT_EQ(decision.reason, "trap");
  EXPECT_TRUE(decision.applied || decision.deferred);
}

// --- Config directives ----------------------------------------------------

TEST(AdaptConfigParse, DirectivesRoundTrip) {
  const std::string text =
      "backend = mpk-switched\n"
      "compartment net\n"
      "compartment app sched libc alloc\n"
      "adapt on\n"
      "adapt cooldown 3\n"
      "adapt min_crossings 64\n"
      "adapt demote_share 0.4\n"
      "adapt min_delta 0.2\n"
      "adapt max_flaps 2\n"
      "adapt allow c1 c0 mpk-shared\n"
      "adapt allow c1 c0 none\n";
  Result<ImageConfig> parsed = ParseImageConfig(text);
  ASSERT_TRUE(parsed.ok()) << parsed.status().ToString();
  const AdaptConfig& adapt = parsed.value().adapt;
  EXPECT_TRUE(adapt.enabled);
  EXPECT_EQ(adapt.cooldown_windows, 3);
  EXPECT_EQ(adapt.min_crossings, 64u);
  EXPECT_DOUBLE_EQ(adapt.demote_share, 0.4);
  EXPECT_DOUBLE_EQ(adapt.min_delta_frac, 0.2);
  EXPECT_EQ(adapt.max_flaps, 2);
  ASSERT_EQ(adapt.allow.size(), 2u);
  EXPECT_EQ(adapt.allow[0].from, 1);
  EXPECT_EQ(adapt.allow[0].to, 0);
  EXPECT_EQ(adapt.allow[0].target, IsolationBackend::kMpkSharedStack);
  EXPECT_EQ(adapt.allow[1].target, IsolationBackend::kNone);

  // Serialize -> reparse must reproduce the adapt block exactly.
  Result<ImageConfig> round =
      ParseImageConfig(ImageConfigToString(parsed.value()));
  ASSERT_TRUE(round.ok()) << round.status().ToString();
  EXPECT_TRUE(round.value().adapt == parsed.value().adapt);
}

TEST(AdaptConfigParse, RejectsMalformedDirectives) {
  const std::string base =
      "backend = mpk-shared\n"
      "compartment net\n"
      "compartment app sched libc alloc\n";
  EXPECT_FALSE(ParseImageConfig(base + "adapt maybe\n").ok());
  EXPECT_FALSE(ParseImageConfig(base + "adapt demote_share 1.5\n").ok());
  EXPECT_FALSE(ParseImageConfig(base + "adapt demote_share -0.1\n").ok());
  EXPECT_FALSE(ParseImageConfig(base + "adapt cooldown many\n").ok());
  EXPECT_FALSE(ParseImageConfig(base + "adapt allow c1 c0 bogus\n").ok());
  EXPECT_FALSE(ParseImageConfig(base + "adapt allow c1 c0\n").ok());
  EXPECT_FALSE(ParseImageConfig(base + "adapt frobnicate 3\n").ok());
}

// --- FL015 ----------------------------------------------------------------

size_t CountRule(const LintReport& report, std::string_view rule) {
  size_t count = 0;
  for (const LintDiagnostic& diagnostic : report.diagnostics) {
    if (diagnostic.rule == rule) {
      ++count;
    }
  }
  return count;
}

TEST(Fl015, FlagsIllegalAdaptAllowTargets) {
  ImageConfig config = TwoCompartments(IsolationBackend::kMpkSwitchedStack);
  config.adapt.enabled = true;
  // Out-of-range compartment, self-boundary, and a none-target between
  // compartments whose metadata forbids shared trust (one error per
  // incompatible lib pair): at least three errors.
  config.adapt.allow.push_back({5, 0, IsolationBackend::kMpkSharedStack});
  config.adapt.allow.push_back({0, 0, IsolationBackend::kMpkSharedStack});
  config.adapt.allow.push_back({1, 0, IsolationBackend::kNone});
  const LintReport report =
      RunRules(ExtractModel(config, BuiltinMetaResolver()));
  EXPECT_GE(CountRule(report, kRuleAdaptIllegalTarget), 3u);
  EXPECT_TRUE(report.HasErrors());
}

TEST(Fl015, FlagsVmRpcTargetOntoFullyReplicatedCompartment) {
  ImageConfig config;
  config.backend = IsolationBackend::kMpkSwitchedStack;
  config.compartments = {{"net", "app"}, {"sched", "libc", "alloc"}};
  config.adapt.enabled = true;
  // Every lib in c1 is VM-replicated: under vm-rpc the callers use local
  // replicas and the boundary never hosts an RPC gate, so the allow row can
  // never take effect.
  config.adapt.allow.push_back({0, 1, IsolationBackend::kVmRpc});
  const LintReport report =
      RunRules(ExtractModel(config, BuiltinMetaResolver()));
  EXPECT_EQ(CountRule(report, kRuleAdaptIllegalTarget), 1u);
}

TEST(Fl015, AcceptsLegalAllowRows) {
  ImageConfig config = TwoCompartments(IsolationBackend::kMpkSwitchedStack);
  config.adapt.enabled = true;
  config.adapt.allow.push_back({1, 0, IsolationBackend::kMpkSharedStack});
  config.adapt.allow.push_back({0, 1, IsolationBackend::kMpkSwitchedStack});
  const LintReport report =
      RunRules(ExtractModel(config, BuiltinMetaResolver()));
  EXPECT_EQ(CountRule(report, kRuleAdaptIllegalTarget), 0u);
}

}  // namespace
}  // namespace flexos
