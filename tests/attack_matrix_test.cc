// The paper's value proposition as a test matrix: one attack, many images.
// A compromised network stack scribbles over another library's memory; a
// hijacked component jumps to an unexported entry point. Whether that is
// caught — and by which mechanism — depends entirely on the build-time
// configuration, not on the code.
#include <gtest/gtest.h>

#include "core/config_parser.h"
#include "core/image_builder.h"

namespace flexos {
namespace {

ImageConfig Split(IsolationBackend backend) {
  ImageConfig config;
  config.backend = backend;
  config.compartments = {{"net"}, {"app", "sched", "libc", "alloc"}};
  return config;
}

// The attack: code running as the network stack writes one byte into an
// app-owned heap allocation. Returns the trap that stopped it, if any.
std::optional<TrapKind> NetWritesAppMemory(Image& image) {
  const Gaddr app_secret = image.AllocatorOf("app").Allocate(64).value();
  const uint32_t canary = 0xfeedc0de;
  image.SpaceOf("app").WriteT<uint32_t>(app_secret, canary);
  std::optional<TrapKind> caught;
  image.Call(kLibPlatform, "net", [&] {
    try {
      uint8_t evil = 0x41;
      image.SpaceOf("net").Write(app_secret, &evil, 1);
    } catch (const TrapException& trap) {
      caught = trap.info().kind;
    }
  });
  if (!caught.has_value()) {
    // No trap: did the attack actually corrupt the data?
    EXPECT_NE(image.SpaceOf("app").ReadT<uint32_t>(app_secret), canary)
        << "write neither trapped nor landed";
  } else {
    EXPECT_EQ(image.SpaceOf("app").ReadT<uint32_t>(app_secret), canary)
        << "trap fired but data corrupted anyway";
  }
  return caught;
}

TEST(AttackMatrix, BaselineLetsTheWriteThrough) {
  // No isolation: the attack silently succeeds — the paper's motivation.
  Machine machine;
  auto image =
      ImageBuilder(machine).Build(BaselineConfig(
          {"app", "net", "sched", "libc", "alloc"})).value();
  EXPECT_FALSE(NetWritesAppMemory(*image).has_value());
}

TEST(AttackMatrix, MpkSharedStackTrapsIt) {
  Machine machine;
  auto image =
      ImageBuilder(machine).Build(Split(IsolationBackend::kMpkSharedStack))
          .value();
  const auto caught = NetWritesAppMemory(*image);
  ASSERT_TRUE(caught.has_value());
  EXPECT_EQ(*caught, TrapKind::kProtectionFault);
}

TEST(AttackMatrix, MpkSwitchedStackTrapsIt) {
  Machine machine;
  auto image =
      ImageBuilder(machine)
          .Build(Split(IsolationBackend::kMpkSwitchedStack))
          .value();
  const auto caught = NetWritesAppMemory(*image);
  ASSERT_TRUE(caught.has_value());
  EXPECT_EQ(*caught, TrapKind::kProtectionFault);
}

TEST(AttackMatrix, VmBackendWritesHitPrivatePagesInstead) {
  // Under the VM backend the same guest address maps to net's own private
  // page — the write "succeeds" but touches nothing of the app's.
  Machine machine;
  auto image =
      ImageBuilder(machine).Build(Split(IsolationBackend::kVmRpc)).value();
  const Gaddr app_secret = image->AllocatorOf("app").Allocate(64).value();
  image->SpaceOf("app").WriteT<uint32_t>(app_secret, 0xfeedc0de);
  image->Call(kLibPlatform, "net", [&] {
    uint8_t evil = 0x41;
    EXPECT_NO_THROW(image->SpaceOf("net").Write(app_secret, &evil, 1));
  });
  EXPECT_EQ(image->SpaceOf("app").ReadT<uint32_t>(app_secret), 0xfeedc0deu);
}

TEST(AttackMatrix, AsanCatchesOverflowsButNotPreciseCrossLibWrites) {
  // Single compartment with a hardened net: ASAN-class checking catches
  // out-of-bounds and use-after-free, but a *precise* write to another
  // library's live heap memory is valid as far as shadow memory is
  // concerned — protecting against that needs isolation (or DFI), which
  // is exactly the trade-off the metadata/compatibility engine reasons
  // about.
  Machine machine;
  ImageConfig config =
      BaselineConfig({"app", "net", "sched", "libc", "alloc"});
  config.hardened_libs = {"net"};
  auto image = ImageBuilder(machine).Build(config).value();
  EXPECT_FALSE(NetWritesAppMemory(*image).has_value());

  // What hardened net DOES catch: overflowing its own buffers.
  const Gaddr own = image->AllocatorOf("net").Allocate(32).value();
  std::optional<TrapKind> caught;
  image->Call(kLibPlatform, "net", [&] {
    try {
      uint8_t blob[48] = {};
      image->SpaceOf("net").Write(own, blob, sizeof(blob));
    } catch (const TrapException& trap) {
      caught = trap.info().kind;
    }
  });
  ASSERT_TRUE(caught.has_value());
  EXPECT_EQ(*caught, TrapKind::kAsanViolation);
}

TEST(AttackMatrix, HijackedControlFlowNeedsCfi) {
  Machine machine;
  // Same compartment, no CFI: the rogue call lands.
  ImageConfig open_config =
      BaselineConfig({"app", "net", "sched", "libc", "alloc"});
  open_config.apis["sched"] = {"thread_add", "thread_rm", "yield"};
  auto open_image = ImageBuilder(machine).Build(open_config).value();
  bool landed = false;
  EXPECT_NO_THROW(open_image->CallNamed("net", "sched", "corrupt_runqueue",
                                        [&] { landed = true; }));
  EXPECT_TRUE(landed);

  // CFI on: the same call traps before the body runs.
  ImageConfig cfi_config = open_config;
  cfi_config.cfi_libs = {"sched"};
  auto cfi_image = ImageBuilder(machine).Build(cfi_config).value();
  landed = false;
  try {
    cfi_image->CallNamed("net", "sched", "corrupt_runqueue",
                         [&] { landed = true; });
    FAIL() << "CFI did not trap";
  } catch (const TrapException& trap) {
    EXPECT_EQ(trap.info().kind, TrapKind::kCfiViolation);
  }
  EXPECT_FALSE(landed);
}

TEST(AttackMatrix, SameConfigFileDifferentVerdicts) {
  // The whole point: flipping one line of the build config flips the
  // attack outcome.
  const char* base =
      "compartment net\n"
      "compartment app sched libc alloc\n";
  Machine machine;
  ImageBuilder builder(machine);

  Result<ImageConfig> open_config =
      ParseImageConfig(std::string("backend = none\ncompartment app net "
                                   "sched libc alloc\n"));
  ASSERT_TRUE(open_config.ok());
  auto open_image = builder.Build(open_config.value()).value();
  EXPECT_FALSE(NetWritesAppMemory(*open_image).has_value());

  Result<ImageConfig> locked_config = ParseImageConfig(
      std::string("backend = mpk-shared\n") + base);
  ASSERT_TRUE(locked_config.ok());
  auto locked_image = builder.Build(locked_config.value()).value();
  EXPECT_TRUE(NetWritesAppMemory(*locked_image).has_value());
}

}  // namespace
}  // namespace flexos
