// Property-based and parameterized sweeps across modules: reference-model
// equivalence for the ring buffer and shadow memory, TCP bulk-transfer
// integrity across a loss/latency/buffer grid, allocator alignment
// guarantees, gate cost monotonicity, and metadata round-trips.
#include <gtest/gtest.h>

#include <cstring>
#include <deque>
#include <map>
#include <tuple>

#include "alloc/buddy_allocator.h"
#include "alloc/freelist_heap.h"
#include "apps/testbed.h"
#include "core/compat.h"
#include "core/metadata.h"
#include "core/mpk_gate.h"
#include "core/vm_gate.h"
#include "libc/ring_buffer.h"
#include "support/rng.h"

namespace flexos {
namespace {

// --- RingBuffer vs. reference deque ----------------------------------------

class RingBufferModelTest : public ::testing::TestWithParam<uint64_t> {};

TEST_P(RingBufferModelTest, MatchesReferenceModel) {
  const uint64_t capacity = GetParam();
  Machine machine;
  AddressSpace space(machine, "ring-prop", 1 << 20);
  ASSERT_TRUE(space.Map(0, 1 << 20, 0).ok());
  RingBuffer ring = RingBuffer::Create(space, 0, capacity);
  std::deque<uint8_t> model;
  Rng rng(capacity * 7919 + 13);

  for (int step = 0; step < 3000; ++step) {
    const uint64_t action = rng.NextBelow(4);
    if (action == 0) {  // Push.
      std::vector<uint8_t> data(1 + rng.NextBelow(capacity));
      for (uint8_t& byte : data) {
        byte = static_cast<uint8_t>(rng.NextU64());
      }
      const uint64_t accepted = ring.Push(data.data(), data.size());
      ASSERT_EQ(accepted,
                std::min<uint64_t>(data.size(), capacity - model.size()));
      model.insert(model.end(), data.begin(), data.begin() + accepted);
    } else if (action == 1) {  // Pop.
      std::vector<uint8_t> out(1 + rng.NextBelow(capacity));
      const uint64_t got = ring.Pop(out.data(), out.size());
      ASSERT_EQ(got, std::min<uint64_t>(out.size(), model.size()));
      for (uint64_t i = 0; i < got; ++i) {
        ASSERT_EQ(out[i], model.front());
        model.pop_front();
      }
    } else if (action == 2 && !model.empty()) {  // Peek.
      const uint64_t offset = rng.NextBelow(model.size());
      const uint64_t span = 1 + rng.NextBelow(model.size() - offset);
      std::vector<uint8_t> out(span);
      ring.Peek(offset, out.data(), span);
      for (uint64_t i = 0; i < span; ++i) {
        ASSERT_EQ(out[i], model[offset + i]);
      }
    } else if (action == 3 && !model.empty()) {  // Discard.
      const uint64_t n = 1 + rng.NextBelow(model.size());
      ring.Discard(n);
      model.erase(model.begin(), model.begin() + static_cast<long>(n));
    }
    ASSERT_EQ(ring.ReadableBytes(), model.size());
    ASSERT_EQ(ring.WritableBytes(), capacity - model.size());
  }
}

INSTANTIATE_TEST_SUITE_P(Capacities, RingBufferModelTest,
                         ::testing::Values(1, 2, 7, 16, 64, 1000, 4096));

// --- Shadow memory vs. reference map ----------------------------------------

TEST(ShadowModel, MatchesReferenceOverRandomOps) {
  Machine machine;
  AddressSpace space(machine, "shadow-prop", 16 * kPageSize);
  ASSERT_TRUE(space.Map(0, 16 * kPageSize, 0).ok());
  machine.context().shadow_checks = true;

  // Reference: poisoned granules (granule-aligned operations only, matching
  // what the hardened allocator issues).
  std::map<uint64_t, bool> poisoned_granules;
  Rng rng(424242);
  const uint64_t total_granules = 16 * kPageSize / kShadowGranule;

  for (int step = 0; step < 2000; ++step) {
    const uint64_t granule = rng.NextBelow(total_granules - 8);
    const uint64_t count = 1 + rng.NextBelow(8);
    const Gaddr addr = granule * kShadowGranule;
    const uint64_t size = count * kShadowGranule;
    if (rng.NextBool(0.5)) {
      space.Poison(addr, size, kShadowHeapRedzone);
      for (uint64_t g = granule; g < granule + count; ++g) {
        poisoned_granules[g] = true;
      }
    } else {
      space.Unpoison(addr, size);
      for (uint64_t g = granule; g < granule + count; ++g) {
        poisoned_granules[g] = false;
      }
    }
    // Probe a random granule both ways.
    const uint64_t probe = rng.NextBelow(total_granules);
    const bool expect_poisoned =
        poisoned_granules.count(probe) != 0 && poisoned_granules.at(probe);
    ASSERT_EQ(space.IsPoisoned(probe * kShadowGranule, kShadowGranule),
              expect_poisoned)
        << "granule " << probe << " at step " << step;
    uint8_t byte = 0;
    if (expect_poisoned) {
      ASSERT_THROW(space.Read(probe * kShadowGranule, &byte, 1),
                   TrapException);
    } else {
      ASSERT_NO_THROW(space.Read(probe * kShadowGranule, &byte, 1));
    }
  }
}

// --- TCP bulk transfer across a condition grid -------------------------------

struct TcpSweepParam {
  double loss;
  uint64_t latency_ns;
  uint64_t recv_chunk;
  uint64_t ring_bytes;
};

class TcpSweepTest : public ::testing::TestWithParam<TcpSweepParam> {};

class BlobRemote final : public RemoteApp {
 public:
  explicit BlobRemote(std::string blob) : blob_(std::move(blob)) {}
  size_t ProduceData(uint8_t* out, size_t max) override {
    const size_t n = std::min(max, blob_.size() - sent_);
    std::memcpy(out, blob_.data() + sent_, n);
    sent_ += n;
    return n;
  }
  bool Finished() const override { return sent_ == blob_.size(); }
  void OnReceive(const uint8_t*, size_t) override {}

 private:
  std::string blob_;
  size_t sent_ = 0;
};

TEST_P(TcpSweepTest, EveryByteArrivesInOrder) {
  const TcpSweepParam& param = GetParam();
  TestbedConfig config;
  config.image = BaselineConfig(DefaultLibs());
  config.link.loss_probability = param.loss;
  config.link.latency_ns = param.latency_ns;
  config.link.seed = 1234;
  config.tcp.ring_bytes = param.ring_bytes;

  std::string blob(48 * 1024, '\0');
  for (size_t i = 0; i < blob.size(); ++i) {
    blob[i] = static_cast<char>((i * 37 + i / 251) % 256);
  }

  Testbed bed(config);
  std::string got;
  bed.SpawnApp("sink", [&] {
    TcpEngine& tcp = bed.stack().tcp();
    Image& image = bed.image();
    AddressSpace& space = image.SpaceOf(kLibApp);
    const Gaddr buffer = bed.AllocShared(param.recv_chunk);
    int listener = 0, conn = 0;
    image.Call(kLibApp, kLibNet,
               [&] { listener = tcp.Listen(5001, 4).value(); });
    image.Call(kLibApp, kLibNet,
               [&] { conn = tcp.Accept(listener).value(); });
    for (;;) {
      uint64_t n = 0;
      image.Call(kLibApp, kLibNet, [&] {
        n = tcp.Recv(conn, buffer, param.recv_chunk).value();
      });
      if (n == 0) {
        break;
      }
      std::string chunk(n, '\0');
      space.ReadUnchecked(buffer, chunk.data(), n);
      got += chunk;
    }
    image.Call(kLibApp, kLibNet, [&] { (void)tcp.Close(conn); });
  });
  BlobRemote app(blob);
  RemoteTcpPeer peer(bed.machine(), bed.link(), RemoteTcpConfig{}, app);
  bed.AddPeer(&peer);
  peer.Connect();
  const Status status = bed.Run();
  ASSERT_TRUE(status.ok()) << status.ToString();
  EXPECT_EQ(got, blob);
}

INSTANTIATE_TEST_SUITE_P(
    Conditions, TcpSweepTest,
    ::testing::Values(
        TcpSweepParam{0.0, 1'000, 4096, 256 * 1024},
        TcpSweepParam{0.0, 100'000, 4096, 256 * 1024},   // High latency.
        TcpSweepParam{0.02, 5'000, 4096, 256 * 1024},    // Light loss.
        TcpSweepParam{0.10, 5'000, 4096, 256 * 1024},    // Heavy loss.
        TcpSweepParam{0.05, 50'000, 512, 16 * 1024},     // Loss + tiny rings.
        TcpSweepParam{0.0, 5'000, 64, 8 * 1024},         // Tiny everything.
        TcpSweepParam{0.15, 2'000, 2048, 32 * 1024}));   // Brutal loss.

// --- Gate cost monotonicity ---------------------------------------------------

class GateArgSweepTest : public ::testing::TestWithParam<uint64_t> {};

TEST_P(GateArgSweepTest, CopyingGatesScaleWithArgs) {
  const uint64_t args = GetParam();
  Machine machine;
  ExecContext target;
  target.compartment = 1;
  auto cost = [&](Gate& gate, uint64_t arg_bytes) {
    const GateCrossing crossing{.target_context = &target,
                                .arg_bytes = arg_bytes,
                                .ret_bytes = 0};
    const uint64_t before = machine.clock().cycles();
    gate.Cross(machine, crossing, [] {});
    return machine.clock().cycles() - before;
  };
  MpkSharedStackGate shared;
  MpkSwitchedStackGate switched;
  VmRpcGate vm;
  // Shared-stack gates never copy; switched/VM gates must not be cheaper
  // with more data.
  EXPECT_EQ(cost(shared, args), cost(shared, args * 2));
  EXPECT_LE(cost(switched, args), cost(switched, args * 2));
  EXPECT_LE(cost(vm, args), cost(vm, args * 2));
  // And the backend ordering holds at every size.
  EXPECT_LT(cost(shared, args), cost(switched, args));
  EXPECT_LT(cost(switched, args), cost(vm, args));
}

INSTANTIATE_TEST_SUITE_P(ArgSizes, GateArgSweepTest,
                         ::testing::Values(0, 8, 64, 512, 4096, 65536));

// --- Allocator alignment sweep -------------------------------------------------

struct AlignParam {
  bool buddy;
  uint64_t align;
};

class AllocatorAlignTest : public ::testing::TestWithParam<AlignParam> {};

TEST_P(AllocatorAlignTest, EveryAllocationHonorsAlignment) {
  const AlignParam& param = GetParam();
  Machine machine;
  AddressSpace space(machine, "align-prop", 8 << 20);
  ASSERT_TRUE(space.Map(0, 4 << 20, 0).ok());
  std::unique_ptr<Allocator> allocator;
  if (param.buddy) {
    allocator = std::make_unique<BuddyAllocator>(space, 0, 1 << 20);
  } else {
    allocator = std::make_unique<FreelistHeap>(space, 0, 1 << 20);
  }
  Rng rng(param.align * 31 + (param.buddy ? 1 : 0));
  std::vector<Gaddr> live;
  for (int i = 0; i < 300; ++i) {
    const uint64_t size = 1 + rng.NextBelow(2000);
    Result<Gaddr> addr = allocator->Allocate(size, param.align);
    if (addr.ok()) {
      EXPECT_EQ(addr.value() % param.align, 0u)
          << "size=" << size << " align=" << param.align;
      live.push_back(addr.value());
    }
    if (!live.empty() && rng.NextBool(0.4)) {
      const size_t index = rng.NextBelow(live.size());
      ASSERT_TRUE(allocator->Free(live[index]).ok());
      live[index] = live.back();
      live.pop_back();
    }
  }
}

INSTANTIATE_TEST_SUITE_P(
    Alignments, AllocatorAlignTest,
    ::testing::Values(AlignParam{false, 16}, AlignParam{false, 64},
                      AlignParam{false, 256}, AlignParam{false, 4096},
                      AlignParam{true, 16}, AlignParam{true, 64},
                      AlignParam{true, 256}, AlignParam{true, 4096}));

// --- Metadata round-trip over randomized specs ---------------------------------

TEST(MetadataProperty, RandomizedSpecsRoundTrip) {
  Rng rng(20260706);
  for (int trial = 0; trial < 200; ++trial) {
    LibraryMeta meta;
    meta.name = "lib" + std::to_string(trial);
    meta.behavior.reads_all = rng.NextBool(0.3);
    if (!meta.behavior.reads_all) {
      meta.behavior.reads_own = rng.NextBool(0.8);
      meta.behavior.reads_shared = rng.NextBool(0.5);
    }
    meta.behavior.writes_all = rng.NextBool(0.3);
    if (!meta.behavior.writes_all) {
      meta.behavior.writes_own = rng.NextBool(0.8);
      meta.behavior.writes_shared = rng.NextBool(0.5);
    }
    meta.behavior.calls_any = rng.NextBool(0.2);
    if (!meta.behavior.calls_any) {
      const uint64_t calls = rng.NextBelow(4);
      for (uint64_t c = 0; c < calls; ++c) {
        meta.behavior.calls.insert("other::fn" + std::to_string(c));
      }
    }
    const uint64_t apis = rng.NextBelow(4);
    for (uint64_t a = 0; a < apis; ++a) {
      meta.api.push_back(ApiFunc{"api" + std::to_string(a)});
    }
    if (rng.NextBool(0.6)) {
      meta.requires_spec.present = true;
      meta.requires_spec.others_may_read_own = rng.NextBool(0.5);
      meta.requires_spec.others_may_write_own = rng.NextBool(0.2);
      meta.requires_spec.others_may_read_shared = rng.NextBool(0.7);
      meta.requires_spec.others_may_write_shared = rng.NextBool(0.5);
      meta.requires_spec.others_may_call_any = rng.NextBool(0.2);
      const uint64_t funcs = rng.NextBelow(3);
      for (uint64_t f = 0; f < funcs; ++f) {
        meta.requires_spec.callable_funcs.insert("fn" + std::to_string(f));
      }
    }

    Result<LibraryMeta> reparsed = ParseLibraryMeta(meta.name, meta.ToString());
    ASSERT_TRUE(reparsed.ok())
        << "trial " << trial << ": " << reparsed.status().ToString()
        << "\nspec:\n"
        << meta.ToString();
    EXPECT_EQ(reparsed->behavior.reads_all, meta.behavior.reads_all);
    EXPECT_EQ(reparsed->behavior.writes_all, meta.behavior.writes_all);
    EXPECT_EQ(reparsed->behavior.calls_any, meta.behavior.calls_any);
    EXPECT_EQ(reparsed->behavior.calls, meta.behavior.calls);
    EXPECT_EQ(reparsed->api.size(), meta.api.size());
    EXPECT_EQ(reparsed->requires_spec.present, meta.requires_spec.present);
    if (meta.requires_spec.present) {
      EXPECT_EQ(reparsed->requires_spec.others_may_write_own,
                meta.requires_spec.others_may_write_own);
      EXPECT_EQ(reparsed->requires_spec.others_may_call_any,
                meta.requires_spec.others_may_call_any);
      EXPECT_EQ(reparsed->requires_spec.callable_funcs,
                meta.requires_spec.callable_funcs);
    }
    // Compatibility is invariant under round-trip.
    const bool before =
        CanShareCompartment(meta, UnsafeCLibMeta("u")).compatible;
    const bool after =
        CanShareCompartment(reparsed.value(), UnsafeCLibMeta("u")).compatible;
    EXPECT_EQ(before, after);
  }
}

}  // namespace
}  // namespace flexos
